//! Topologies: node coordinates, ports and links.
//!
//! The paper's SoC is a k×k 2D mesh of 1 mm tiles (Table II: 4×4), with
//! five router ports: the four compass neighbours and the local core
//! (NIC). Nodes are numbered row-major from the bottom-left, matching the
//! paper's figures:
//!
//! ```text
//! 12 13 14 15
//!  8  9 10 11
//!  4  5  6  7
//!  0  1  2  3
//! ```
//!
//! The engine itself only needs a node set, a `(node, direction) →
//! neighbour` map and a distance metric, so the concrete [`Mesh`] is one
//! implementation of the [`TopologyOps`] trait; [`Torus`] adds
//! per-dimension wraparound links under the same numbering, and the
//! [`Topology`] enum carries either through configs by value. Every flat
//! per-port array in the engine stays indexed `node * PORTS + direction`
//! — wraparound changes which *neighbour* a port reaches, not the port
//! set, so `PORTS = 5` and the paper's 2-bit turn encoding both carry
//! over unchanged (crossing a wrap link preserves the travelling
//! direction: East across the seam is still East).

use std::fmt;

/// Identifies a node (router + core tile) in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// (x, y) position of a node; x grows east, y grows north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Coord {
    /// Column, 0 at the west edge.
    pub x: u16,
    /// Row, 0 at the south edge.
    pub y: u16,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Router ports per node (4 compass + core). Every flat per-port array
/// in the engine — router-bank state, link guards, credit tables — is
/// indexed `node * PORTS + direction`, so the constant lives here next
/// to [`Direction`] as the single source of truth.
pub const PORTS: usize = 5;

/// A router port direction. `Core` is the local NIC port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward larger x.
    East,
    /// Toward smaller y.
    South,
    /// Toward smaller x.
    West,
    /// Toward larger y.
    North,
    /// The local core / NIC.
    Core,
}

impl Direction {
    /// All five port directions, in the paper's E/S/W/N/C order.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::North,
        Direction::Core,
    ];

    /// The four mesh directions (no `Core`).
    pub const MESH: [Direction; 4] = [
        Direction::East,
        Direction::South,
        Direction::West,
        Direction::North,
    ];

    /// Port index in the E/S/W/N/C ordering used for crossbar wiring and
    /// preset registers.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::South => 1,
            Direction::West => 2,
            Direction::North => 3,
            Direction::Core => 4,
        }
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 4`.
    #[must_use]
    pub fn from_index(idx: usize) -> Direction {
        Direction::ALL[idx]
    }

    /// The opposite compass direction; `Core` is its own opposite.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::Core => Direction::Core,
        }
    }

    /// Turn relative to travelling direction `self`: the direction that
    /// is `turn` of a flit that entered a router moving along `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is `Core` (a flit at its source has no travelling
    /// direction; use absolute encoding there) or if `turn` is
    /// [`Turn::Core`] (which maps to `Direction::Core` trivially).
    #[must_use]
    pub fn apply_turn(self, turn: Turn) -> Direction {
        if turn == Turn::Core {
            return Direction::Core;
        }
        assert!(
            self != Direction::Core,
            "relative turns are undefined when travelling on the Core port"
        );
        // Compass order for rotation: E -> S -> W -> N -> E is a
        // clockwise... East turning right is South; South turning right
        // is West; West->North; North->East. That matches index+1 mod 4.
        let i = self.index();
        match turn {
            Turn::Straight => self,
            Turn::Right => Direction::from_index((i + 1) % 4),
            Turn::Left => Direction::from_index((i + 3) % 4),
            Turn::Core => unreachable!("handled above"),
        }
    }

    /// The turn a flit travelling along `self` must take to leave along
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is `Core`, or if `out` is the reverse of `self`
    /// (U-turns are not representable in the paper's 2-bit encoding).
    #[must_use]
    pub fn turn_to(self, out: Direction) -> Turn {
        if out == Direction::Core {
            return Turn::Core;
        }
        assert!(self != Direction::Core, "no travelling direction at source");
        let d = (out.index() + 4 - self.index()) % 4;
        match d {
            0 => Turn::Straight,
            1 => Turn::Right,
            3 => Turn::Left,
            _ => panic!("u-turn from {self:?} to {out:?} is not encodable"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::North => "N",
            Direction::Core => "C",
        };
        f.write_str(s)
    }
}

/// Relative output selection at a non-source router (the paper's 2-bit
/// route field: Left / Right / Straight / Core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Turn {
    /// Continue in the travelling direction.
    Straight,
    /// Turn left relative to travel.
    Left,
    /// Turn right relative to travel.
    Right,
    /// Eject to the local core.
    Core,
}

impl Turn {
    /// 2-bit encoding (L=0, R=1, S=2, C=3 — the paper's field order
    /// "Left, Right, Straight and Core").
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Turn::Left => 0,
            Turn::Right => 1,
            Turn::Straight => 2,
            Turn::Core => 3,
        }
    }

    /// Inverse of [`Turn::bits`].
    ///
    /// # Panics
    ///
    /// Panics if `bits > 3`.
    #[must_use]
    pub fn from_bits(bits: u32) -> Turn {
        match bits {
            0 => Turn::Left,
            1 => Turn::Right,
            2 => Turn::Straight,
            3 => Turn::Core,
            _ => panic!("turn encoding is 2 bits, got {bits}"),
        }
    }
}

/// A directed router-to-router (or router-to-NIC) link: the `dir` output
/// of router `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Router whose output port this is.
    pub from: NodeId,
    /// Output direction.
    pub dir: Direction,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.from, self.dir)
    }
}

/// A k×k (or rectangular) 2D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// A `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        Mesh { width, height }
    }

    /// The paper's 4×4 evaluation mesh.
    #[must_use]
    pub fn paper_4x4() -> Self {
        Mesh::new(4, 4)
    }

    /// Mesh width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[must_use]
    pub fn len(self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// `true` only for the degenerate 0-node mesh (unreachable through
    /// [`Mesh::new`]); present for API completeness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Iterate over all node ids, row-major from the bottom-left.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// Coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(
            (node.0 as usize) < self.len(),
            "{node} outside {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn node_at(self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "{c} outside {}x{} mesh",
            self.width,
            self.height
        );
        NodeId(c.y * self.width + c.x)
    }

    /// Neighbour of `node` in compass direction `dir`, if it exists.
    ///
    /// Returns `None` at mesh edges and for `dir == Core`.
    #[must_use]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let next = match dir {
            Direction::East if c.x + 1 < self.width => Coord { x: c.x + 1, y: c.y },
            Direction::West if c.x > 0 => Coord { x: c.x - 1, y: c.y },
            Direction::North if c.y + 1 < self.height => Coord { x: c.x, y: c.y + 1 },
            Direction::South if c.y > 0 => Coord { x: c.x, y: c.y - 1 },
            _ => return None,
        };
        Some(self.node_at(next))
    }

    /// Number of mesh neighbours of `node` (2 at corners, 3 at edges, 4
    /// inside) — NMAP seeds the highest-traffic task at the node with the
    /// most neighbours.
    #[must_use]
    pub fn degree(self, node: NodeId) -> usize {
        Direction::MESH
            .iter()
            .filter(|d| self.neighbor(node, **d).is_some())
            .count()
    }

    /// Manhattan (minimal hop) distance between two nodes.
    #[must_use]
    pub fn manhattan(self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// All directed router-to-router links.
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        self.nodes().flat_map(move |n| {
            Direction::MESH
                .iter()
                .filter(move |d| self.neighbor(n, **d).is_some())
                .map(move |d| LinkId { from: n, dir: *d })
        })
    }
}

/// What the engine, router compiler and routing layer need from a
/// fabric: a rectangular node grid (the row-major numbering above is
/// shared by every implementation), a `(node, direction) → neighbour`
/// map, and a minimal-hop distance metric. Everything else — node
/// iteration, coordinate mapping, link enumeration — derives from
/// those, so the provided methods are shared verbatim by [`Mesh`] and
/// [`Torus`].
pub trait TopologyOps {
    /// Grid width (columns).
    fn width(&self) -> u16;

    /// Grid height (rows).
    fn height(&self) -> u16;

    /// Neighbour of `node` in compass direction `dir`, if the fabric
    /// has a link there. `None` for `Core` always; `None` at grid edges
    /// on a mesh, never `None` for compass directions on a torus.
    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId>;

    /// Minimal hop distance between two nodes.
    fn distance(&self, a: NodeId, b: NodeId) -> u16;

    /// Hop count of the longest minimal route — sizes the head-flit
    /// route field (`(w-1)+(h-1)` on a mesh, `⌊w/2⌋+⌊h/2⌋` on a torus).
    fn max_route_hops(&self) -> usize;

    /// `true` if `link` crosses a wraparound seam (always `false` on a
    /// mesh).
    fn is_wrap_link(&self, link: LinkId) -> bool;

    /// Total number of nodes.
    fn len(&self) -> usize {
        usize::from(self.width()) * usize::from(self.height())
    }

    /// `true` only for a degenerate 0-node fabric (unreachable through
    /// the constructors); present for API completeness.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn coord(&self, node: NodeId) -> Coord {
        assert!(
            (node.0 as usize) < self.len(),
            "{node} outside {}x{} grid",
            self.width(),
            self.height()
        );
        Coord {
            x: node.0 % self.width(),
            y: node.0 / self.width(),
        }
    }

    /// Node at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width() && c.y < self.height(),
            "{c} outside {}x{} grid",
            self.width(),
            self.height()
        );
        NodeId(c.y * self.width() + c.x)
    }

    /// Number of compass neighbours of `node`.
    fn degree(&self, node: NodeId) -> usize {
        Direction::MESH
            .iter()
            .filter(|d| self.neighbor(node, **d).is_some())
            .count()
    }
}

impl TopologyOps for Mesh {
    fn width(&self) -> u16 {
        Mesh::width(*self)
    }

    fn height(&self) -> u16 {
        Mesh::height(*self)
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        Mesh::neighbor(*self, node, dir)
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        self.manhattan(a, b)
    }

    fn max_route_hops(&self) -> usize {
        usize::from(Mesh::width(*self) - 1 + Mesh::height(*self) - 1)
    }

    fn is_wrap_link(&self, _link: LinkId) -> bool {
        false
    }
}

/// A `width × height` 2D torus: the same row-major grid as [`Mesh`],
/// plus one wraparound link per row and per column, so every router has
/// all four compass neighbours. The wrap links are what make the fabric
/// interesting for SMART: a preset bypass path can cross the die seam
/// in the same single cycle as any other `HPC_max`-bounded leg, and
/// dimension-order routes shrink to at most `⌊w/2⌋+⌊h/2⌋` hops.
///
/// Caveat: the wraparound rings reintroduce cyclic channel
/// dependencies, so XY dimension-order on a torus is not deadlock-free
/// under wormhole flow control in general. The evaluated cells stay
/// live at the traffic levels this repo runs (every conformance cell
/// asserts full delivery), but a production torus would add a dateline
/// VC or a bubble scheme on the rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    width: u16,
    height: u16,
}

impl Torus {
    /// A `width × height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (a 1-wide ring would wrap
    /// a node onto itself, which the engine's link tables cannot
    /// represent).
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus dimensions must be at least 2 (got {width}x{height})"
        );
        Torus { width, height }
    }

    /// Torus width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Torus height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        self.height
    }

    /// The mesh this torus augments: same nodes, same numbering, wrap
    /// links removed.
    #[must_use]
    pub fn unwrapped(self) -> Mesh {
        Mesh::new(self.width, self.height)
    }

    /// Iterate over all node ids, row-major from the bottom-left.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..TopologyOps::len(&self) as u16).map(NodeId)
    }

    /// All directed router-to-router links (4 per node; wrap links
    /// included).
    pub fn links(self) -> impl Iterator<Item = LinkId> {
        self.nodes().flat_map(move |n| {
            Direction::MESH
                .iter()
                .map(move |d| LinkId { from: n, dir: *d })
        })
    }
}

impl TopologyOps for Torus {
    fn width(&self) -> u16 {
        self.width
    }

    fn height(&self) -> u16 {
        self.height
    }

    fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let (w, h) = (self.width, self.height);
        let next = match dir {
            Direction::East => Coord {
                x: (c.x + 1) % w,
                y: c.y,
            },
            Direction::West => Coord {
                x: (c.x + w - 1) % w,
                y: c.y,
            },
            Direction::North => Coord {
                x: c.x,
                y: (c.y + 1) % h,
            },
            Direction::South => Coord {
                x: c.x,
                y: (c.y + h - 1) % h,
            },
            Direction::Core => return None,
        };
        Some(self.node_at(next))
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u16 {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        dx.min(self.width - dx) + dy.min(self.height - dy)
    }

    fn max_route_hops(&self) -> usize {
        usize::from(self.width / 2 + self.height / 2)
    }

    fn is_wrap_link(&self, link: LinkId) -> bool {
        let c = self.coord(link.from);
        match link.dir {
            Direction::East => c.x + 1 == self.width,
            Direction::West => c.x == 0,
            Direction::North => c.y + 1 == self.height,
            Direction::South => c.y == 0,
            Direction::Core => false,
        }
    }
}

/// A topology choice carried by value through configs: either fabric,
/// `Copy` like the [`Mesh`] it replaces in `SimConfig`/`NocConfig`.
/// High-fanout entry points take `impl Into<Topology>`, so call sites
/// holding a bare [`Mesh`] or [`Torus`] keep working unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A 2D mesh (the paper's fabric).
    Mesh(Mesh),
    /// A 2D torus with per-dimension wraparound links.
    Torus(Torus),
}

impl From<Mesh> for Topology {
    fn from(m: Mesh) -> Self {
        Topology::Mesh(m)
    }
}

impl From<Torus> for Topology {
    fn from(t: Torus) -> Self {
        Topology::Torus(t)
    }
}

impl Topology {
    /// Short lowercase label (`mesh` / `torus`), the grammar the server
    /// protocol and experiment names use.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Topology::Mesh(_) => "mesh",
            Topology::Torus(_) => "torus",
        }
    }

    /// The mesh, when this is one (lets mesh-only code paths keep their
    /// exact historical behaviour).
    #[must_use]
    pub fn as_mesh(self) -> Option<Mesh> {
        match self {
            Topology::Mesh(m) => Some(m),
            Topology::Torus(_) => None,
        }
    }

    /// `true` when the fabric has wraparound links.
    #[must_use]
    pub fn is_torus(self) -> bool {
        matches!(self, Topology::Torus(_))
    }

    /// Grid width (columns).
    #[must_use]
    pub fn width(self) -> u16 {
        match self {
            Topology::Mesh(m) => m.width(),
            Topology::Torus(t) => t.width(),
        }
    }

    /// Grid height (rows).
    #[must_use]
    pub fn height(self) -> u16 {
        match self {
            Topology::Mesh(m) => m.height(),
            Topology::Torus(t) => t.height(),
        }
    }

    /// Total number of nodes.
    #[must_use]
    pub fn len(self) -> usize {
        usize::from(self.width()) * usize::from(self.height())
    }

    /// `true` only for a degenerate 0-node fabric.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Iterate over all node ids, row-major from the bottom-left.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// Coordinate of `node` (see [`TopologyOps::coord`]).
    #[must_use]
    pub fn coord(self, node: NodeId) -> Coord {
        match self {
            Topology::Mesh(m) => m.coord(node),
            Topology::Torus(t) => TopologyOps::coord(&t, node),
        }
    }

    /// Node at coordinate `c` (see [`TopologyOps::node_at`]).
    #[must_use]
    pub fn node_at(self, c: Coord) -> NodeId {
        match self {
            Topology::Mesh(m) => m.node_at(c),
            Topology::Torus(t) => TopologyOps::node_at(&t, c),
        }
    }

    /// Neighbour of `node` in direction `dir`, if the fabric links one.
    #[must_use]
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        match self {
            Topology::Mesh(m) => m.neighbor(node, dir),
            Topology::Torus(t) => TopologyOps::neighbor(&t, node, dir),
        }
    }

    /// Number of compass neighbours of `node`.
    #[must_use]
    pub fn degree(self, node: NodeId) -> usize {
        match self {
            Topology::Mesh(m) => m.degree(node),
            Topology::Torus(t) => TopologyOps::degree(&t, node),
        }
    }

    /// Minimal hop distance between two nodes (Manhattan on a mesh;
    /// per-axis shorter-way-around on a torus).
    #[must_use]
    pub fn distance(self, a: NodeId, b: NodeId) -> u16 {
        match self {
            Topology::Mesh(m) => m.manhattan(a, b),
            Topology::Torus(t) => TopologyOps::distance(&t, a, b),
        }
    }

    /// Hop count of the longest minimal route (sizes route headers).
    #[must_use]
    pub fn max_route_hops(self) -> usize {
        match self {
            Topology::Mesh(m) => TopologyOps::max_route_hops(&m),
            Topology::Torus(t) => TopologyOps::max_route_hops(&t),
        }
    }

    /// `true` if `link` crosses a wraparound seam.
    #[must_use]
    pub fn is_wrap_link(self, link: LinkId) -> bool {
        match self {
            Topology::Mesh(_) => false,
            Topology::Torus(t) => TopologyOps::is_wrap_link(&t, link),
        }
    }

    /// All directed router-to-router links.
    #[must_use]
    pub fn links(self) -> Vec<LinkId> {
        match self {
            Topology::Mesh(m) => m.links().collect(),
            Topology::Torus(t) => t.links().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_numbering() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.len(), 16);
        assert_eq!(m.coord(NodeId(0)), Coord { x: 0, y: 0 });
        assert_eq!(m.coord(NodeId(3)), Coord { x: 3, y: 0 });
        assert_eq!(m.coord(NodeId(12)), Coord { x: 0, y: 3 });
        assert_eq!(m.node_at(Coord { x: 2, y: 2 }), NodeId(10));
    }

    #[test]
    fn neighbors_and_edges() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.neighbor(NodeId(5), Direction::East), Some(NodeId(6)));
        assert_eq!(m.neighbor(NodeId(5), Direction::North), Some(NodeId(9)));
        assert_eq!(m.neighbor(NodeId(5), Direction::South), Some(NodeId(1)));
        assert_eq!(m.neighbor(NodeId(5), Direction::West), Some(NodeId(4)));
        assert_eq!(m.neighbor(NodeId(0), Direction::West), None);
        assert_eq!(m.neighbor(NodeId(0), Direction::South), None);
        assert_eq!(m.neighbor(NodeId(15), Direction::East), None);
        assert_eq!(m.neighbor(NodeId(3), Direction::Core), None);
    }

    #[test]
    fn degree_identifies_mesh_center() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.degree(NodeId(0)), 2);
        assert_eq!(m.degree(NodeId(1)), 3);
        assert_eq!(m.degree(NodeId(5)), 4);
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh::paper_4x4();
        assert_eq!(m.manhattan(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.manhattan(NodeId(9), NodeId(10)), 1);
        assert_eq!(m.manhattan(NodeId(7), NodeId(7)), 0);
    }

    #[test]
    fn link_count_is_2_times_internal_edges() {
        // 4x4 mesh: 2 · (3·4 + 3·4) = 48 directed links.
        let m = Mesh::paper_4x4();
        assert_eq!(m.links().count(), 48);
    }

    #[test]
    fn direction_indexing_round_trips() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn opposites() {
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::Core.opposite(), Direction::Core);
    }

    #[test]
    fn turns_compose_correctly() {
        use Direction::*;
        // Travelling East: straight keeps East, right goes South, left
        // goes North.
        assert_eq!(East.apply_turn(Turn::Straight), East);
        assert_eq!(East.apply_turn(Turn::Right), South);
        assert_eq!(East.apply_turn(Turn::Left), North);
        assert_eq!(North.apply_turn(Turn::Right), East);
        assert_eq!(South.apply_turn(Turn::Left), East);
        // And turn_to inverts apply_turn.
        for travel in [East, South, West, North] {
            for turn in [Turn::Straight, Turn::Left, Turn::Right] {
                let out = travel.apply_turn(turn);
                assert_eq!(travel.turn_to(out), turn);
            }
            assert_eq!(travel.turn_to(Core), Turn::Core);
        }
    }

    #[test]
    #[should_panic(expected = "u-turn")]
    fn u_turn_is_not_encodable() {
        let _ = Direction::East.turn_to(Direction::West);
    }

    #[test]
    fn turn_bit_encoding_round_trips() {
        for t in [Turn::Left, Turn::Right, Turn::Straight, Turn::Core] {
            assert_eq!(Turn::from_bits(t.bits()), t);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_bounds_checked() {
        let m = Mesh::new(2, 2);
        let _ = m.coord(NodeId(4));
    }

    #[test]
    fn rectangular_meshes_work() {
        let m = Mesh::new(8, 2);
        assert_eq!(m.len(), 16);
        assert_eq!(m.coord(NodeId(9)), Coord { x: 1, y: 1 });
        assert_eq!(m.neighbor(NodeId(9), Direction::North), None);
    }

    #[test]
    fn torus_wraps_every_edge() {
        let t = Torus::new(4, 4);
        // Interior neighbours match the mesh.
        assert_eq!(
            TopologyOps::neighbor(&t, NodeId(5), Direction::East),
            Some(NodeId(6))
        );
        // Edges wrap instead of dropping off.
        assert_eq!(
            TopologyOps::neighbor(&t, NodeId(3), Direction::East),
            Some(NodeId(0))
        );
        assert_eq!(
            TopologyOps::neighbor(&t, NodeId(0), Direction::West),
            Some(NodeId(3))
        );
        assert_eq!(
            TopologyOps::neighbor(&t, NodeId(12), Direction::North),
            Some(NodeId(0))
        );
        assert_eq!(
            TopologyOps::neighbor(&t, NodeId(2), Direction::South),
            Some(NodeId(14))
        );
        assert_eq!(TopologyOps::neighbor(&t, NodeId(2), Direction::Core), None);
        // Every node has all four compass neighbours.
        for n in t.nodes() {
            assert_eq!(TopologyOps::degree(&t, n), 4, "{n}");
        }
    }

    #[test]
    fn torus_distance_takes_the_short_way_around() {
        let t = Torus::new(4, 4);
        // Corner to corner: 1 wrap hop per axis instead of 3.
        assert_eq!(TopologyOps::distance(&t, NodeId(0), NodeId(15)), 2);
        // Half-way around is the same either way.
        assert_eq!(TopologyOps::distance(&t, NodeId(0), NodeId(2)), 2);
        assert_eq!(TopologyOps::distance(&t, NodeId(7), NodeId(7)), 0);
        // Never longer than the mesh distance.
        let m = Mesh::new(4, 4);
        for a in t.nodes() {
            for b in t.nodes() {
                assert!(TopologyOps::distance(&t, a, b) <= m.manhattan(a, b));
            }
        }
    }

    #[test]
    fn torus_link_count_and_wrap_detection() {
        let t = Torus::new(4, 4);
        // 4 out-links per node.
        assert_eq!(t.links().count(), 64);
        // 4 wrap links per row-pair crossing + per column: 2 per row
        // (E at x=3, W at x=0) x 4 rows + 2 per column x 4 columns.
        let wraps = t
            .links()
            .filter(|l| TopologyOps::is_wrap_link(&t, *l))
            .count();
        assert_eq!(wraps, 16);
        assert!(TopologyOps::is_wrap_link(
            &t,
            LinkId {
                from: NodeId(3),
                dir: Direction::East
            }
        ));
        assert!(!TopologyOps::is_wrap_link(
            &t,
            LinkId {
                from: NodeId(1),
                dir: Direction::East
            }
        ));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_wide_torus_rejected() {
        let _ = Torus::new(1, 4);
    }

    #[test]
    fn topology_enum_dispatches_both_fabrics() {
        let mesh: Topology = Mesh::paper_4x4().into();
        let torus: Topology = Torus::new(4, 4).into();
        assert_eq!(mesh.label(), "mesh");
        assert_eq!(torus.label(), "torus");
        assert!(!mesh.is_torus());
        assert!(torus.is_torus());
        assert_eq!(mesh.as_mesh(), Some(Mesh::paper_4x4()));
        assert_eq!(torus.as_mesh(), None);
        assert_eq!(mesh.len(), torus.len());
        assert_eq!(mesh.neighbor(NodeId(3), Direction::East), None);
        assert_eq!(torus.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
        assert_eq!(mesh.distance(NodeId(0), NodeId(15)), 6);
        assert_eq!(torus.distance(NodeId(0), NodeId(15)), 2);
        assert_eq!(mesh.max_route_hops(), 6);
        assert_eq!(torus.max_route_hops(), 4);
        assert_eq!(mesh.links().len(), 48);
        assert_eq!(torus.links().len(), 64);
        // Reflexive Into keeps threaded code monomorphic-friendly.
        let same: Topology = mesh;
        assert_eq!(same, mesh);
    }

    #[test]
    fn torus_unwrapped_is_the_same_grid() {
        let t = Torus::new(8, 4);
        let m = t.unwrapped();
        assert_eq!(m.width(), 8);
        assert_eq!(m.height(), 4);
        assert_eq!(TopologyOps::coord(&t, NodeId(13)), m.coord(NodeId(13)));
    }
}
