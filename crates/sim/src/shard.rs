//! The sharded cycle engine: one simulation, many threads, bit-identical
//! results.
//!
//! The serial [`Network`] processes every router and NIC on one core.
//! This module partitions the fabric into horizontal **row bands**
//! (shard `s` of `k` owns rows `[s·h/k, (s+1)·h/k)`), gives each band
//! its own [`RouterBank`], NICs, packet arena and event rings, and runs
//! the bands on scoped threads with a per-cycle barrier. Events whose
//! endpoint lies in a foreign band — flit arrivals and credit returns —
//! are exchanged through per-pair outboxes at the barrier, applied in
//! ascending source-shard order.
//!
//! # Why the result is bit-identical to the serial engine
//!
//! * **Cross-band events always apply at least one cycle later.** A NIC
//!   injection launched in `step(c)` has `ST = c` and arrives no earlier
//!   than the end of `c` (applied in `step(c+1)`); a router departure has
//!   `ST = c+1` and applies in `step(c+2)` at the earliest; credits apply
//!   at `c+1` (NIC) or `c+3` (router tail). One exchange per cycle is
//!   therefore enough — no event can be needed mid-cycle by another band.
//! * **Order within a ring slot cannot matter.** The flow table's
//!   sender↔endpoint pairing is one-to-one and every sender launches at
//!   most one flit (and frees at most one VC) per cycle, so each endpoint
//!   receives at most one arrival and each sender at most one credit per
//!   cycle. Events for *distinct* endpoints/senders touch disjoint queues
//!   and only commutative accumulators (counter sums, per-flow stats,
//!   histogram buckets), so any interleaving of the per-band streams
//!   produces the same state. (The millimetre counters are `f64` sums of
//!   per-leg link counts times the configured hop pitch; at the paper's
//!   integral 1 mm pitch these sums are exact in any order.)
//! * **Link exclusivity is checked globally.** SMART legs may cross many
//!   bands in one cycle, so the two-plane link guard becomes a pair of
//!   shared atomic bitsets: the launching shard marks every link of the
//!   leg with `fetch_or`, and a second mark of the same link in the same
//!   `ST` cycle panics exactly like the serial engine. The coordinator
//!   re-zeroes a plane only between cycles, when no worker is stepping.
//!
//! Packets crossing a band boundary are re-interned: the head flit
//! carries its [`PacketMeta`] (including the injection timestamp) into
//! the destination shard's arena, body flits find the slot through a
//! per-shard `PacketId → slot` transfer map, and the tail both removes
//! the map entry on entry and releases the source shard's slot on exit.
//!
//! [`Engine`] wraps either a serial [`Network`] or a [`ShardedNetwork`]
//! behind the serial engine's exact API, so every existing driver
//! (schedules, experiments, benches, tests) runs unchanged; a
//! [`ShardPlan`] selects the implementation.

use crate::counters::ActivityCounters;
use crate::flit::{Flit, Packet, PacketArena, PacketId, PacketMeta, PacketSlot, VcId};
use crate::forward::{Endpoint, FlowTable, LegLut, Sender};
use crate::network::{CreditPath, Network, SimConfig, RING};
use crate::nic::{Nic, RxEvent};
use crate::router::{CreditRelease, RouterBank, RouterDeparture};
use crate::stats::SimStats;
use crate::telemetry::{
    CycleView, MetricsCollector, NoProbe, Probe, TelemetryConfig, TelemetrySeries,
};
use crate::topology::{Direction, LinkId, NodeId, Topology, PORTS};
use crate::trace::{TraceError, Tracer};
use crate::traffic::TrafficSource;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How to split one simulation across threads.
///
/// The partition is a horizontal row-band decomposition, so mesh and
/// torus fabrics are handled uniformly (a torus wrap link is just
/// another link whose endpoint owner is looked up per node). `shards`
/// is clamped to the fabric height — every band must own at least one
/// row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Requested number of row-band shards (1 = serial engine).
    pub shards: usize,
}

impl ShardPlan {
    /// The serial engine: no threads, no barriers.
    #[must_use]
    pub fn serial() -> Self {
        ShardPlan { shards: 1 }
    }

    /// `n` row bands on scoped threads.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn banded(n: usize) -> Self {
        assert!(n > 0, "a shard plan needs at least one shard");
        ShardPlan { shards: n }
    }

    /// The shard count actually used for `topo`: clamped to the fabric
    /// height so every band owns at least one row.
    #[must_use]
    pub fn effective_shards(&self, topo: Topology) -> usize {
        self.shards.clamp(1, topo.height() as usize)
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::serial()
    }
}

/// An event crossing a shard boundary at the per-cycle exchange.
#[derive(Debug, Clone, Copy)]
enum BoundaryEvent {
    /// A flit arriving at an endpoint owned by the receiving shard.
    /// `meta` is the full packet metadata from the sending shard's
    /// arena, re-interned (head) or matched (body/tail) on receipt;
    /// `arrival` is the cycle the flit lands at the endpoint.
    Arrival {
        end: Endpoint,
        flit: Flit,
        meta: PacketMeta,
        arrival: u64,
    },
    /// A freed VC travelling back to a sender owned by the receiving
    /// shard, usable at `apply`.
    Credit {
        sender: Sender,
        vc: VcId,
        apply: u64,
    },
}

/// Read-only state shared by every worker during a session.
struct SharedCtx<'a> {
    lut: &'a LegLut,
    flows: &'a FlowTable,
    topo: Topology,
    /// Shard owner of each node.
    owner: &'a [u8],
    /// The two link-guard planes, indexed by `ST`-cycle parity.
    planes: &'a [Vec<AtomicU64>; 2],
    /// `k × k` outboxes, `src * k + dst`; each cell is written by one
    /// worker and drained by one worker, never concurrently.
    outbox: &'a [Mutex<Vec<BoundaryEvent>>],
    /// Per-shard packets queued by the coordinator for the next cycle.
    offer_box: &'a [Mutex<Vec<Packet>>],
    k: usize,
}

/// A sense-reversing spin barrier with a shared panic flag: a worker
/// that panics mid-cycle (e.g. a preset violation) never reaches the
/// barrier, so waiters watch the flag instead of deadlocking. `wait`
/// returns `false` when a peer panicked; callers bail out quietly and
/// the scope join re-raises the original panic.
struct CycleBarrier<'a> {
    count: AtomicUsize,
    generation: AtomicU64,
    parties: usize,
    panicked: &'a AtomicBool,
}

impl<'a> CycleBarrier<'a> {
    fn new(parties: usize, panicked: &'a AtomicBool) -> Self {
        CycleBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            parties,
            panicked,
        }
    }

    fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::SeqCst);
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.parties {
            self.count.store(0, Ordering::SeqCst);
            self.generation.store(gen + 1, Ordering::SeqCst);
            !self.panicked.load(Ordering::SeqCst)
        } else {
            while self.generation.load(Ordering::SeqCst) == gen {
                if self.panicked.load(Ordering::SeqCst) {
                    return false;
                }
                std::thread::yield_now();
            }
            !self.panicked.load(Ordering::SeqCst)
        }
    }
}

/// Sets the shared panic flag if its thread unwinds, so barrier waiters
/// wake up instead of spinning forever.
struct PanicSentinel<'a>(&'a AtomicBool);

impl Drop for PanicSentinel<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// What a session runs until.
enum Goal {
    /// Exactly this many cycles.
    Fixed(u64),
    /// Until quiescent, at most this many cycles.
    Drain(u64),
}

/// One row band: a region-sized copy of the serial engine's mutable
/// state. Everything here is owned exclusively by one worker thread
/// during a session.
#[derive(Debug)]
struct Shard {
    /// First node of the band (bands are contiguous node ranges because
    /// rows are contiguous in node numbering).
    start: u16,
    bank: RouterBank,
    nics: Vec<Nic>,
    arena: PacketArena,
    /// Packets currently traversing this band whose metadata arrived
    /// with a head flit from another band: stable id → local slot.
    xfer: HashMap<PacketId, PacketSlot>,
    /// Credit reverse paths for stop endpoints in this band, indexed
    /// `local_router * 5 + in_dir`.
    stop_credit: Vec<Option<CreditPath>>,
    /// Credit reverse paths for NIC endpoints in this band, by local
    /// node index.
    nic_credit: Vec<Option<CreditPath>>,
    arrivals: Vec<Vec<(Endpoint, Flit)>>,
    credit_ring: Vec<Vec<(Sender, VcId)>>,
    scheduled_arrivals: usize,
    /// Full-fabric link counts: a SMART leg launched here may cross
    /// links in any band; per-shard arrays sum to the serial counts.
    link_flits: Vec<u64>,
    counters: ActivityCounters,
    stats: SimStats,
    stats_from: u64,
    enabled_ports: u64,
    total_ports: u64,
    /// Backlogged NICs of this band by *global* node id, ascending.
    active_nics: Vec<u32>,
    /// Membership mask for `active_nics`, by local node index.
    nic_active: Vec<bool>,
    arrival_scratch: Vec<(Endpoint, Flit)>,
    credit_scratch: Vec<(Sender, VcId)>,
    dep_scratch: Vec<RouterDeparture>,
    rel_scratch: Vec<CreditRelease>,
    /// Per-shard telemetry collector, sized for the *full* fabric
    /// (probe events carry global router/link indices); the per-shard
    /// series merge to the serial series bit-exactly.
    telemetry: Option<Box<MetricsCollector>>,
}

impl Shard {
    fn local(&self, n: NodeId) -> usize {
        debug_assert!(n.0 >= self.start, "{n} is not in this band");
        (n.0 - self.start) as usize
    }

    fn offer_local(&mut self, packet: Packet, flows: &FlowTable, topo: Topology) {
        let plan = flows.plan(packet.flow);
        assert_eq!(packet.src, plan.route.source(), "packet src mismatch");
        assert_eq!(
            packet.dst,
            plan.route.destination(topo),
            "packet dst mismatch"
        );
        let l = self.local(packet.src);
        let slot = self.arena.intern(&packet);
        self.nics[l].offer(slot, self.arena.get(slot));
        if !self.nic_active[l] {
            self.nic_active[l] = true;
            let g = u32::from(packet.src.0);
            let pos = self
                .active_nics
                .binary_search(&g)
                .expect_err("mask says absent");
            self.active_nics.insert(pos, g);
        }
    }

    /// The serial engine's `step`, restricted to this band. Launches and
    /// credits whose endpoint lies in a foreign band go to the outbox
    /// instead of the local rings. The probe dispatch mirrors the serial
    /// engine's: no collector selects the const-folded `NoProbe` step.
    fn step(&mut self, c: u64, me: usize, ctx: &SharedCtx<'_>) {
        if let Some(mut t) = self.telemetry.take() {
            self.step_probed(c, me, ctx, &mut *t);
            self.telemetry = Some(t);
        } else {
            self.step_probed(c, me, ctx, &mut NoProbe);
        }
    }

    fn step_probed<P: Probe>(&mut self, c: u64, me: usize, ctx: &SharedCtx<'_>, probe: &mut P) {
        let slot = (c % RING as u64) as usize;

        // 1. Credits landing this cycle.
        let mut credits = std::mem::take(&mut self.credit_scratch);
        std::mem::swap(&mut credits, &mut self.credit_ring[slot]);
        for (sender, vc) in credits.drain(..) {
            match sender {
                Sender::Nic(n) => {
                    let l = self.local(n);
                    self.nics[l].credit(vc);
                }
                Sender::RouterOutput(r, d) => {
                    let l = self.local(r);
                    self.bank.credit(l, d, vc);
                }
            }
        }
        self.credit_scratch = credits;

        // 2. Flit arrivals (scheduled for end of cycle c-1).
        let mut arrivals = std::mem::take(&mut self.arrival_scratch);
        std::mem::swap(&mut arrivals, &mut self.arrivals[slot]);
        self.scheduled_arrivals -= arrivals.len();
        for (end, flit) in arrivals.drain(..) {
            match end {
                Endpoint::Stop { router, in_dir } => {
                    let l = self.local(router);
                    self.bank
                        .receive(l, in_dir, flit, c.saturating_sub(1), &mut self.counters);
                }
                Endpoint::Nic { node } => {
                    let arrival_cycle = c - 1;
                    let meta = *self.arena.get(flit.pkt);
                    let l = self.local(node);
                    let events =
                        self.nics[l].receive(flit, &meta, arrival_cycle, &mut self.counters);
                    if let Some(RxEvent::Head(flow, lat, srcq)) = events.head {
                        if meta.gen_cycle >= self.stats_from {
                            self.stats.record_head(flow, lat, srcq);
                        }
                    }
                    if let Some(RxEvent::Tail(flow, lat, vc)) = events.tail {
                        if meta.gen_cycle >= self.stats_from {
                            self.stats.record_tail(flow, lat);
                        }
                        let path = self.nic_credit[l]
                            .unwrap_or_else(|| panic!("no sender tracks endpoint {end:?}"));
                        self.emit_credit(path, vc, c + 1, me, ctx);
                        self.arena.release(flit.pkt);
                    }
                }
            }
        }
        self.arrival_scratch = arrivals;

        // 3. NIC injection over the band's active set (global node ids,
        // ascending — the serial sweep order restricted to this band).
        let mut kept = 0;
        for k in 0..self.active_nics.len() {
            let g = self.active_nics[k] as usize;
            let l = g - self.start as usize;
            if let Some(flit) = self.nics[l].try_inject(&mut self.arena, c, &mut self.counters) {
                let leg = ctx.lut.first_leg_idx(flit.flow);
                debug_assert!(
                    matches!(ctx.lut.rec(leg).sender, Sender::Nic(n) if n.0 as usize == g)
                );
                self.launch(leg, flit, c, me, ctx, probe);
            }
            if self.nics[l].backlog() > 0 {
                self.active_nics[kept] = self.active_nics[k];
                kept += 1;
            } else {
                self.nic_active[l] = false;
            }
        }
        self.active_nics.truncate(kept);

        // 4. Switch allocation; ST happens during c + 1.
        let mut deps = std::mem::take(&mut self.dep_scratch);
        let mut rels = std::mem::take(&mut self.rel_scratch);
        deps.clear();
        rels.clear();
        for r in 0..self.bank.len() {
            if self.bank.is_drained(r) {
                continue;
            }
            let node = NodeId(self.start + r as u16);
            let lut = ctx.lut;
            self.bank.allocate(
                r,
                c,
                |flow| {
                    let leg = lut.leg_idx_from(flow, node);
                    (lut.rec(leg).out_dir, leg)
                },
                &mut self.counters,
                &mut deps,
                &mut rels,
                probe,
            );
        }
        for dep in deps.drain(..) {
            let rec = ctx.lut.rec(dep.leg);
            assert_eq!(
                rec.out_dir, dep.out_dir,
                "plan/grant mismatch on leg {}",
                dep.leg
            );
            self.launch(dep.leg, dep.flit, c + 1, me, ctx, probe);
        }
        for rel in rels.drain(..) {
            let r = usize::from(rel.router);
            let path = self.stop_credit[r * PORTS + rel.in_dir.index()].unwrap_or_else(|| {
                panic!(
                    "no sender tracks endpoint {}/{}",
                    NodeId(self.start + rel.router),
                    rel.in_dir
                )
            });
            self.emit_credit(path, rel.vc, c + 3, me, ctx);
        }
        self.dep_scratch = deps;
        self.rel_scratch = rels;

        // 5. Gating + cycle accounting (band-local port counts; the
        // per-shard sums reproduce the serial totals).
        self.counters.active_port_cycles += self.enabled_ports;
        self.counters.gated_port_cycles += self.total_ports - self.enabled_ports;
        self.counters.cycles += 1;
        if P::ENABLED {
            // Shards advance in lockstep, so every shard's windows close
            // at the same global cycles — the merge precondition.
            probe.on_cycle_end(&CycleView {
                cycle: c + 1,
                injected: self.counters.packets_injected,
                delivered: self.counters.packets_delivered,
                buffered: self.bank.total_buffered(),
                link_flits: &self.link_flits,
            });
        }
    }

    /// The serial `launch`, with the link guard shared (atomic) and the
    /// arrival routed to the endpoint's owner.
    fn launch<P: Probe>(
        &mut self,
        leg: u32,
        flit: Flit,
        st_cycle: u64,
        me: usize,
        ctx: &SharedCtx<'_>,
        probe: &mut P,
    ) {
        let rec = *ctx.lut.rec(leg);
        let p = (st_cycle & 1) as usize;
        for &li in ctx.lut.rec_links(&rec) {
            let li = li as usize;
            let (w, bit) = (li / 64, 1u64 << (li % 64));
            let prev = ctx.planes[p][w].fetch_or(bit, Ordering::SeqCst);
            assert!(
                prev & bit == 0,
                "two flits on {} in cycle {st_cycle}: preset violation",
                LinkId {
                    from: NodeId((li / PORTS) as u16),
                    dir: Direction::from_index(li % PORTS),
                }
            );
            self.link_flits[li] += 1;
        }
        self.counters.xbar_flit_traversals += u64::from(rec.crossbars);
        self.counters.link_flit_mm += rec.mm;
        if rec.cycles == 2 {
            self.counters.pipeline_reg_writes += 1;
        }
        if P::ENABLED {
            probe.on_launch(rec.n_links);
        }
        let arrival = st_cycle + u64::from(rec.cycles) - 1;
        let dest = match rec.end {
            Endpoint::Stop { router, .. } => ctx.owner[router.0 as usize],
            Endpoint::Nic { node } => ctx.owner[node.0 as usize],
        } as usize;
        if dest == me {
            let slot = ((arrival + 1) % RING as u64) as usize;
            self.arrivals[slot].push((rec.end, flit));
            self.scheduled_arrivals += 1;
        } else {
            let meta = *self.arena.get(flit.pkt);
            if flit.is_tail() {
                // Last local reference: flits traverse in order, so
                // every earlier flit of this packet has already left.
                self.arena.release(flit.pkt);
            }
            lock_free_of_poison(&ctx.outbox[me * ctx.k + dest]).push(BoundaryEvent::Arrival {
                end: rec.end,
                flit,
                meta,
                arrival,
            });
        }
    }

    /// The serial `emit_credit`, routed to the sender's owner.
    fn emit_credit(
        &mut self,
        path: CreditPath,
        vc: VcId,
        apply: u64,
        me: usize,
        ctx: &SharedCtx<'_>,
    ) {
        self.counters.xbar_credit_traversals += u64::from(path.crossbars);
        self.counters.link_credit_mm += path.mm;
        let n = match path.sender {
            Sender::Nic(n) | Sender::RouterOutput(n, _) => n,
        };
        let dest = ctx.owner[n.0 as usize] as usize;
        if dest == me {
            let slot = (apply % RING as u64) as usize;
            self.credit_ring[slot].push((path.sender, vc));
        } else {
            lock_free_of_poison(&ctx.outbox[me * ctx.k + dest]).push(BoundaryEvent::Credit {
                sender: path.sender,
                vc,
                apply,
            });
        }
    }

    /// Apply one source shard's boundary events. Heads re-intern their
    /// metadata (preserving the injection timestamp), bodies and tails
    /// resolve the local slot through the transfer map.
    fn transfer_in(&mut self, events: &mut Vec<BoundaryEvent>) {
        for ev in events.drain(..) {
            match ev {
                BoundaryEvent::Credit { sender, vc, apply } => {
                    let slot = (apply % RING as u64) as usize;
                    self.credit_ring[slot].push((sender, vc));
                }
                BoundaryEvent::Arrival {
                    end,
                    mut flit,
                    meta,
                    arrival,
                } => {
                    let pkt = if flit.is_head() {
                        let slot = self.arena.intern_meta(meta);
                        if !flit.is_tail() {
                            let prev = self.xfer.insert(meta.id, slot);
                            debug_assert!(
                                prev.is_none(),
                                "packet {:?} re-entered a band mid-flight",
                                meta.id
                            );
                        }
                        slot
                    } else if flit.is_tail() {
                        self.xfer.remove(&meta.id).unwrap_or_else(|| {
                            panic!("tail of {:?} crossed a band without its head", meta.id)
                        })
                    } else {
                        *self.xfer.get(&meta.id).unwrap_or_else(|| {
                            panic!("body of {:?} crossed a band without its head", meta.id)
                        })
                    };
                    flit.pkt = pkt;
                    let slot = ((arrival + 1) % RING as u64) as usize;
                    self.arrivals[slot].push((end, flit));
                    self.scheduled_arrivals += 1;
                }
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.bank.total_buffered() == 0
            && self.scheduled_arrivals == 0
            && self.nics.iter().all(Nic::is_drained)
    }
}

/// Lock a mutex, ignoring poisoning: a poisoned outbox only ever means
/// a peer worker panicked mid-cycle, and the panic sentinel already
/// guarantees the session unwinds with the original panic.
fn lock_free_of_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The sharded engine: row-band shards coupled by a per-cycle
/// boundary exchange, producing bit-identical results to [`Network`].
///
/// Build one through [`Engine::new`] with a [`ShardPlan`] of two or
/// more shards.
#[derive(Debug)]
pub struct ShardedNetwork {
    cfg: SimConfig,
    flows: FlowTable,
    lut: LegLut,
    /// Shard owner per node.
    owner: Vec<u8>,
    shards: Vec<Shard>,
    /// Shared link-exclusivity planes by `ST`-cycle parity.
    planes: [Vec<AtomicU64>; 2],
    /// The `ST` cycle each plane currently describes (`u64::MAX` =
    /// none); maintained by the coordinator between cycles.
    plane_cycle: [u64; 2],
    outbox: Vec<Mutex<Vec<BoundaryEvent>>>,
    offer_box: Vec<Mutex<Vec<Packet>>>,
    cycle: u64,
    /// Merged read models, refreshed after every mutating call so the
    /// borrowing accessors (`counters()`, `stats()`) stay cheap.
    merged_counters: ActivityCounters,
    merged_stats: SimStats,
    merged_links: Vec<u64>,
}

impl ShardedNetwork {
    /// Build `k ≥ 2` row-band shards for `flows` under `cfg`. Prefer
    /// [`Engine::new`], which falls back to the serial engine for
    /// single-shard plans.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `k` exceeds the fabric height, or the
    /// configuration/flow plans are inconsistent.
    #[must_use]
    pub fn new(cfg: SimConfig, flows: FlowTable, k: usize) -> Self {
        cfg.validate();
        let topo = cfg.topology;
        let n = topo.len();
        let (w, h) = (topo.width() as usize, topo.height() as usize);
        assert!(k >= 2, "use the serial engine for a single shard");
        assert!(k <= h, "{k} shards need at least {k} rows (fabric has {h})");
        assert!(k <= u8::MAX as usize, "owner table stores shard ids as u8");

        // Band s owns rows [s*h/k, (s+1)*h/k); rows are contiguous node
        // ranges, so each band is the node range [row_lo*w, row_hi*w).
        let band_start = |s: usize| s * h / k * w;
        let mut owner = vec![0u8; n];
        for (s, o) in (0..k).flat_map(|s| (band_start(s)..band_start(s + 1)).map(move |i| (s, i))) {
            owner[o] = s as u8;
        }

        let _ = flows.sender_endpoints();
        let mut shards: Vec<Shard> = (0..k)
            .map(|s| {
                let start = band_start(s);
                let len = band_start(s + 1) - start;
                let mut bank = RouterBank::new(len, cfg.vcs_per_port, cfg.vc_depth);
                bank.set_base_node(NodeId(start as u16));
                Shard {
                    start: start as u16,
                    bank,
                    nics: (start..start + len)
                        .map(|i| Nic::new(NodeId(i as u16), cfg.vcs_per_port))
                        .collect(),
                    arena: PacketArena::new(),
                    xfer: HashMap::new(),
                    stop_credit: vec![None; len * PORTS],
                    nic_credit: vec![None; len],
                    arrivals: vec![Vec::new(); RING],
                    credit_ring: vec![Vec::new(); RING],
                    scheduled_arrivals: 0,
                    link_flits: vec![0; n * PORTS],
                    counters: ActivityCounters::new(),
                    stats: SimStats::new(),
                    stats_from: 0,
                    enabled_ports: 0,
                    total_ports: (len * 10) as u64,
                    active_nics: Vec::new(),
                    nic_active: vec![false; len],
                    arrival_scratch: Vec::new(),
                    credit_scratch: Vec::new(),
                    dep_scratch: Vec::new(),
                    rel_scratch: Vec::new(),
                    telemetry: None,
                }
            })
            .collect();

        // Preset-driven port enables + credit reverse paths, dispatched
        // to each touched node's owner — the serial construction split
        // along band lines.
        for plan in flows.iter() {
            for leg in &plan.legs {
                if let Sender::RouterOutput(r, d) = leg.sender {
                    let sh = &mut shards[owner[r.0 as usize] as usize];
                    let l = sh.local(r);
                    sh.bank.enable_output(l, d);
                }
                for link in &leg.links {
                    let sh = &mut shards[owner[link.from.0 as usize] as usize];
                    let l = sh.local(link.from);
                    sh.bank.enable_output(l, link.dir);
                    let to = topo
                        .neighbor(link.from, link.dir)
                        .unwrap_or_else(|| panic!("{link} leaves the fabric"));
                    let sh = &mut shards[owner[to.0 as usize] as usize];
                    let l = sh.local(to);
                    sh.bank.enable_input(l, link.dir.opposite());
                }
                let path = Some(CreditPath {
                    sender: leg.sender,
                    crossbars: leg.crossbars(),
                    mm: leg.link_mm(),
                });
                match leg.end {
                    Endpoint::Stop { router, in_dir } => {
                        let sh = &mut shards[owner[router.0 as usize] as usize];
                        let l = sh.local(router);
                        sh.bank.enable_input(l, in_dir);
                        sh.stop_credit[l * PORTS + in_dir.index()] = path;
                    }
                    Endpoint::Nic { node } => {
                        let sh = &mut shards[owner[node.0 as usize] as usize];
                        let l = sh.local(node);
                        sh.nic_credit[l] = path;
                    }
                }
            }
        }
        for sh in &mut shards {
            sh.enabled_ports = (0..sh.bank.len())
                .map(|r| sh.bank.enabled_ports(r) as u64)
                .sum();
        }

        let words = (n * PORTS).div_ceil(64);
        let plane = || (0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let lut = LegLut::new(&flows);
        let mut net = ShardedNetwork {
            cfg,
            flows,
            lut,
            owner,
            shards,
            planes: [plane(), plane()],
            plane_cycle: [u64::MAX, u64::MAX],
            outbox: (0..k * k).map(|_| Mutex::new(Vec::new())).collect(),
            offer_box: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
            cycle: 0,
            merged_counters: ActivityCounters::new(),
            merged_stats: SimStats::new(),
            merged_links: vec![0; n * PORTS],
        };
        net.refresh_merged();
        net
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.cfg.topology
    }

    /// The flow table in use.
    #[must_use]
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Current cycle (cycles fully processed).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Activity counters merged across shards (identical to the serial
    /// engine's counters).
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.merged_counters
    }

    /// Latency statistics merged across shards.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.merged_stats
    }

    /// Only packets *generated* at or after `cycle` contribute to
    /// latency statistics (warm-up exclusion).
    pub fn set_stats_from(&mut self, cycle: u64) {
        for sh in &mut self.shards {
            sh.stats_from = cycle;
        }
    }

    /// Zero the activity counters (e.g. at the end of warm-up).
    pub fn reset_counters(&mut self) {
        for sh in &mut self.shards {
            sh.counters = ActivityCounters::new();
            sh.link_flits.fill(0);
            if let Some(t) = sh.telemetry.as_mut() {
                t.seed_links(&sh.link_flits);
            }
        }
        self.refresh_merged();
    }

    /// Start collecting windowed telemetry: one full-fabric-sized
    /// collector per shard, all windowed from the current (common)
    /// cycle. Probe events carry global indices and each event fires in
    /// exactly one shard, so the merged series equals the serial
    /// engine's bit-exactly. Replaces any collectors already attached.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        let n = self.cfg.topology.len();
        let cycle = self.cycle;
        for sh in &mut self.shards {
            let mut collector = Box::new(MetricsCollector::attach(cfg, n, n * PORTS, cycle));
            collector.seed_links(&sh.link_flits);
            sh.telemetry = Some(collector);
        }
    }

    /// Detach and merge the per-shard collectors, flushing trailing
    /// partial windows. `None` if telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        let cycle = self.cycle;
        let series: Vec<TelemetrySeries> = self
            .shards
            .iter_mut()
            .filter_map(|sh| {
                let collector = sh.telemetry.take()?;
                Some(collector.finish(&CycleView {
                    cycle,
                    injected: sh.counters.packets_injected,
                    delivered: sh.counters.packets_delivered,
                    buffered: sh.bank.total_buffered(),
                    link_flits: &sh.link_flits,
                }))
            })
            .collect();
        if series.is_empty() {
            return None;
        }
        assert_eq!(
            series.len(),
            self.shards.len(),
            "telemetry must be attached to every shard or none"
        );
        Some(TelemetrySeries::merge(&series))
    }

    /// Flits carried per link since the last counter reset, merged
    /// across shards.
    pub fn link_flit_counts(&self) -> impl Iterator<Item = (LinkId, u64)> + '_ {
        self.merged_links
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                (
                    LinkId {
                        from: NodeId((i / PORTS) as u16),
                        dir: Direction::from_index(i % PORTS),
                    },
                    *n,
                )
            })
    }

    /// Queue a generated packet at its source NIC (in its owner shard).
    ///
    /// # Panics
    ///
    /// Panics if the packet's flow is unknown or its src/dst disagree
    /// with the flow's route.
    pub fn offer(&mut self, packet: Packet) {
        let s = self.owner[packet.src.0 as usize] as usize;
        self.shards[s].offer_local(packet, &self.flows, self.cfg.topology);
    }

    /// Advance one cycle (a one-cycle threaded session; prefer
    /// [`ShardedNetwork::run_with`] or [`ShardedNetwork::drain`], which
    /// amortize the thread spawn over many cycles).
    pub fn step(&mut self) {
        self.run_session(None, Goal::Fixed(1));
    }

    /// Run `cycles` cycles, pulling packets from `traffic` each cycle.
    /// Traffic generation stays on the coordinator thread, so one RNG
    /// stream is consumed in exactly the serial order.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        self.run_session(Some(traffic), Goal::Fixed(cycles));
    }

    /// `true` when no packet is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(Shard::is_quiescent)
    }

    /// Step until quiescent, up to `max_cycles`. Returns `true` if the
    /// network drained. Cycle-for-cycle identical to the serial drain.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        if self.is_quiescent() {
            return true;
        }
        self.run_session(None, Goal::Drain(max_cycles))
    }

    /// Injection backlog across all NICs.
    #[must_use]
    pub fn total_backlog(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.nics.iter().map(Nic::backlog).sum::<usize>())
            .sum()
    }

    /// The threaded session driving every mode: spawn one worker per
    /// shard, run cycles under a 3-barrier protocol, join, refresh the
    /// merged read models. Returns the final quiescence verdict (only
    /// meaningful for [`Goal::Drain`]).
    ///
    /// Per cycle: the coordinator preps guard planes and fills the
    /// offer boxes, then barrier **A** releases the workers to step;
    /// barrier **B** (all outboxes complete) releases the boundary
    /// exchange, applied in ascending source-shard order; each worker
    /// publishes its quiescence flag and barrier **C** hands control
    /// back to the coordinator.
    fn run_session(&mut self, mut traffic: Option<&mut dyn TrafficSource>, goal: Goal) -> bool {
        let k = self.shards.len();
        let start_cycle = self.cycle;
        if matches!(goal, Goal::Fixed(0)) {
            return self.is_quiescent();
        }

        let panicked = AtomicBool::new(false);
        let stop = AtomicBool::new(false);
        let quiet: Vec<AtomicBool> = (0..k).map(|_| AtomicBool::new(false)).collect();
        let barrier = CycleBarrier::new(k + 1, &panicked);

        // Plane bookkeeping needs `&mut self.plane_cycle` while workers
        // borrow the rest, so run the plane prep eagerly per cycle here
        // in the coordinator (exclusive access between barriers C and A).
        let mut ran: u64 = 0;
        let mut all_quiet = false;

        {
            let ctx = SharedCtx {
                lut: &self.lut,
                flows: &self.flows,
                topo: self.cfg.topology,
                owner: &self.owner,
                planes: &self.planes,
                outbox: &self.outbox,
                offer_box: &self.offer_box,
                k,
            };
            let shards = &mut self.shards;
            let plane_cycle = &mut self.plane_cycle;
            let planes = &self.planes;
            std::thread::scope(|scope| {
                for (i, shard) in shards.iter_mut().enumerate() {
                    let (ctx, barrier, stop, quiet) = (&ctx, &barrier, &stop, &quiet);
                    let sentinel_flag = &panicked;
                    scope.spawn(move || {
                        let _sentinel = PanicSentinel(sentinel_flag);
                        let mut c = start_cycle;
                        loop {
                            if !barrier.wait() {
                                return;
                            }
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            let mut offers =
                                std::mem::take(&mut *lock_free_of_poison(&ctx.offer_box[i]));
                            for p in offers.drain(..) {
                                shard.offer_local(p, ctx.flows, ctx.topo);
                            }
                            *lock_free_of_poison(&ctx.offer_box[i]) = offers;
                            shard.step(c, i, ctx);
                            if !barrier.wait() {
                                return;
                            }
                            for s in 0..ctx.k {
                                let mut evs = std::mem::take(&mut *lock_free_of_poison(
                                    &ctx.outbox[s * ctx.k + i],
                                ));
                                shard.transfer_in(&mut evs);
                                *lock_free_of_poison(&ctx.outbox[s * ctx.k + i]) = evs;
                            }
                            quiet[i].store(shard.is_quiescent(), Ordering::SeqCst);
                            if !barrier.wait() {
                                return;
                            }
                            c += 1;
                        }
                    });
                }

                // Coordinator.
                let _sentinel = PanicSentinel(&panicked);
                let mut c = start_cycle;
                loop {
                    let should_stop = match goal {
                        Goal::Fixed(n) => ran == n,
                        Goal::Drain(max) => all_quiet || ran == max,
                    };
                    if should_stop {
                        stop.store(true, Ordering::SeqCst);
                    } else {
                        for cyc in [c, c + 1] {
                            let p = (cyc & 1) as usize;
                            if plane_cycle[p] != cyc {
                                for w in &planes[p] {
                                    w.store(0, Ordering::SeqCst);
                                }
                                plane_cycle[p] = cyc;
                            }
                        }
                        if let Some(t) = traffic.as_deref_mut() {
                            for p in t.generate(c) {
                                let s = ctx.owner[p.src.0 as usize] as usize;
                                lock_free_of_poison(&ctx.offer_box[s]).push(p);
                            }
                        }
                    }
                    if !barrier.wait() || should_stop {
                        break;
                    }
                    if !barrier.wait() {
                        break;
                    }
                    if !barrier.wait() {
                        break;
                    }
                    all_quiet = quiet.iter().all(|q| q.load(Ordering::SeqCst));
                    c += 1;
                    ran += 1;
                }
            });
        }

        self.cycle = start_cycle + ran;
        self.refresh_merged();
        match goal {
            Goal::Fixed(_) => self.is_quiescent(),
            Goal::Drain(_) => all_quiet,
        }
    }

    /// Rebuild the merged counter/stat/link read models from the shards.
    fn refresh_merged(&mut self) {
        let mut c = ActivityCounters::new();
        for sh in &self.shards {
            c.merge(&sh.counters);
        }
        // Every shard advances in lockstep; merged cycles are the common
        // cycle count, not the k-fold sum.
        c.cycles = self.shards[0].counters.cycles;
        self.merged_counters = c;

        let mut st = SimStats::new();
        for sh in &self.shards {
            st.merge(&sh.stats);
        }
        self.merged_stats = st;

        self.merged_links.fill(0);
        for sh in &self.shards {
            for (i, n) in sh.link_flits.iter().enumerate() {
                self.merged_links[i] += n;
            }
        }
    }
}

/// The cycle engine behind every design: the serial [`Network`] or a
/// [`ShardedNetwork`], selected by a [`ShardPlan`] at build time. The
/// API mirrors [`Network`] exactly, so drivers are implementation-
/// agnostic; results are bit-identical either way.
//
// One engine exists per run and lives on the driver's stack — never in
// collections — so the serial/sharded size gap buys nothing from boxing
// and would cost a deref on every hot-path dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Engine {
    /// The single-threaded engine.
    Serial(Network),
    /// The row-band threaded engine.
    Sharded(ShardedNetwork),
}

impl Engine {
    /// Build an engine for `flows` under `cfg`, serial or sharded per
    /// `plan` (after clamping to the fabric height).
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the flow plans are inconsistent.
    #[must_use]
    pub fn new(cfg: SimConfig, flows: FlowTable, plan: ShardPlan) -> Self {
        let k = plan.effective_shards(cfg.topology);
        if k <= 1 {
            Engine::Serial(Network::new(cfg, flows))
        } else {
            Engine::Sharded(ShardedNetwork::new(cfg, flows, k))
        }
    }

    /// A serial engine (shorthand for a [`ShardPlan::serial`] plan).
    #[must_use]
    pub fn serial(cfg: SimConfig, flows: FlowTable) -> Self {
        Engine::Serial(Network::new(cfg, flows))
    }

    /// Number of shards (1 for the serial engine).
    #[must_use]
    pub fn shards(&self) -> usize {
        match self {
            Engine::Serial(_) => 1,
            Engine::Sharded(s) => s.shards(),
        }
    }

    /// Record micro-architectural events for journey logs, VCD dumps
    /// and counter cross-validation.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on a sharded engine — tracing captures a
    /// single global event order, which concurrent shards cannot
    /// produce. Rebuild with `shards = 1` to trace, or use windowed
    /// telemetry ([`Engine::set_telemetry`]), which works on both
    /// engines.
    pub fn enable_tracing(&mut self, capacity: usize) -> Result<(), TraceError> {
        match self {
            Engine::Serial(n) => {
                n.enable_tracing(capacity);
                Ok(())
            }
            Engine::Sharded(s) => Err(TraceError { shards: s.shards() }),
        }
    }

    /// Start collecting windowed telemetry (see [`crate::telemetry`]).
    /// Works on both engines; the sharded engine's merged series equals
    /// the serial engine's bit-exactly.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        match self {
            Engine::Serial(n) => n.set_telemetry(cfg),
            Engine::Sharded(s) => s.set_telemetry(cfg),
        }
    }

    /// Detach the telemetry collector(s), flushing the trailing partial
    /// window. `None` if telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        match self {
            Engine::Serial(n) => n.take_telemetry(),
            Engine::Sharded(s) => s.take_telemetry(),
        }
    }

    /// The tracer, if tracing is enabled (always `None` when sharded).
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        match self {
            Engine::Serial(n) => n.tracer(),
            Engine::Sharded(_) => None,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        match self {
            Engine::Serial(n) => n.config(),
            Engine::Sharded(s) => s.config(),
        }
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> Topology {
        match self {
            Engine::Serial(n) => n.topology(),
            Engine::Sharded(s) => s.topology(),
        }
    }

    /// The flow table in use.
    #[must_use]
    pub fn flows(&self) -> &FlowTable {
        match self {
            Engine::Serial(n) => n.flows(),
            Engine::Sharded(s) => s.flows(),
        }
    }

    /// Current cycle (cycles fully processed).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            Engine::Serial(n) => n.cycle(),
            Engine::Sharded(s) => s.cycle(),
        }
    }

    /// Activity counters accumulated since the last reset.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        match self {
            Engine::Serial(n) => n.counters(),
            Engine::Sharded(s) => s.counters(),
        }
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match self {
            Engine::Serial(n) => n.stats(),
            Engine::Sharded(s) => s.stats(),
        }
    }

    /// Only packets *generated* at or after `cycle` contribute to
    /// latency statistics (warm-up exclusion).
    pub fn set_stats_from(&mut self, cycle: u64) {
        match self {
            Engine::Serial(n) => n.set_stats_from(cycle),
            Engine::Sharded(s) => s.set_stats_from(cycle),
        }
    }

    /// Zero the activity counters (e.g. at the end of warm-up).
    pub fn reset_counters(&mut self) {
        match self {
            Engine::Serial(n) => n.reset_counters(),
            Engine::Sharded(s) => s.reset_counters(),
        }
    }

    /// Flits carried per link since the last counter reset.
    #[must_use]
    pub fn link_flit_counts(&self) -> Box<dyn Iterator<Item = (LinkId, u64)> + '_> {
        match self {
            Engine::Serial(n) => Box::new(n.link_flit_counts()),
            Engine::Sharded(s) => Box::new(s.link_flit_counts()),
        }
    }

    /// Queue a generated packet at its source NIC.
    ///
    /// # Panics
    ///
    /// Panics if the packet's flow is unknown or its src/dst disagree
    /// with the flow's route.
    pub fn offer(&mut self, packet: Packet) {
        match self {
            Engine::Serial(n) => n.offer(packet),
            Engine::Sharded(s) => s.offer(packet),
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        match self {
            Engine::Serial(n) => n.step(),
            Engine::Sharded(s) => s.step(),
        }
    }

    /// Run `cycles` cycles, pulling packets from `traffic` each cycle.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        match self {
            Engine::Serial(n) => n.run_with(traffic, cycles),
            Engine::Sharded(s) => s.run_with(traffic, cycles),
        }
    }

    /// `true` when no packet is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        match self {
            Engine::Serial(n) => n.is_quiescent(),
            Engine::Sharded(s) => s.is_quiescent(),
        }
    }

    /// Step until quiescent, up to `max_cycles`; `true` if the network
    /// drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        match self {
            Engine::Serial(n) => n.drain(max_cycles),
            Engine::Sharded(s) => s.drain(max_cycles),
        }
    }

    /// Injection backlog across all NICs.
    #[must_use]
    pub fn total_backlog(&self) -> usize {
        match self {
            Engine::Serial(n) => n.total_backlog(),
            Engine::Sharded(s) => s.total_backlog(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlowId;
    use crate::route::SourceRoute;
    use crate::traffic::BernoulliTraffic;

    fn crossing_flows(h: u16) -> (SimConfig, FlowTable, Vec<(FlowId, f64)>) {
        let cfg = SimConfig {
            topology: crate::topology::Mesh::new(h, h).into(),
            ..SimConfig::paper_4x4()
        };
        // Column flows crossing every band boundary plus row flows
        // staying inside bands.
        let mut routes = Vec::new();
        let mut rates = Vec::new();
        let mut id = 0;
        for x in 0..h {
            let (a, b) = (NodeId(x), NodeId((h - 1) * h + x));
            routes.push((FlowId(id), SourceRoute::xy(cfg.topology, a, b).unwrap()));
            rates.push((FlowId(id), 0.02));
            id += 1;
            let (a, b) = (NodeId(x * h), NodeId(x * h + h - 1));
            routes.push((FlowId(id), SourceRoute::xy(cfg.topology, a, b).unwrap()));
            rates.push((FlowId(id), 0.02));
            id += 1;
        }
        let flows = FlowTable::mesh_baseline(cfg.topology, &routes);
        (cfg, flows, rates)
    }

    fn run(engine: &mut Engine, cfg: SimConfig, rates: &[(FlowId, f64)], seed: u64) {
        let mut traffic = BernoulliTraffic::new(
            rates,
            engine.flows(),
            cfg.topology,
            cfg.flits_per_packet,
            seed,
        );
        engine.run_with(&mut traffic, 500);
        assert!(engine.drain(20_000), "network failed to drain");
    }

    #[test]
    fn sharded_matches_serial_smoke() {
        let (cfg, flows, rates) = crossing_flows(8);
        let mut serial = Engine::serial(cfg, flows.clone());
        run(&mut serial, cfg, &rates, 0xBEEF);
        for k in [2usize, 4] {
            let mut sharded = Engine::new(cfg, flows.clone(), ShardPlan::banded(k));
            assert_eq!(sharded.shards(), k);
            run(&mut sharded, cfg, &rates, 0xBEEF);
            assert_eq!(serial.cycle(), sharded.cycle(), "k={k}");
            assert_eq!(serial.counters(), sharded.counters(), "k={k}");
            assert_eq!(serial.stats(), sharded.stats(), "k={k}");
            let a: Vec<_> = serial.link_flit_counts().collect();
            let b: Vec<_> = sharded.link_flit_counts().collect();
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn plan_clamps_to_height() {
        let plan = ShardPlan::banded(64);
        let topo: Topology = crate::topology::Mesh::new(4, 4).into();
        assert_eq!(plan.effective_shards(topo), 4);
        assert_eq!(ShardPlan::serial().effective_shards(topo), 1);
        assert_eq!(ShardPlan::default(), ShardPlan::serial());
    }

    #[test]
    fn sharded_engine_refuses_tracing_with_typed_error() {
        let (cfg, flows, _) = crossing_flows(4);
        let mut e = Engine::new(cfg, flows.clone(), ShardPlan::banded(2));
        let err = e.enable_tracing(16).expect_err("sharded engines refuse");
        assert_eq!(err, TraceError { shards: 2 });
        let msg = err.to_string();
        assert!(msg.contains("tracing requires the serial engine"), "{msg}");
        assert!(msg.contains("2 row-band shards"), "{msg}");
        assert!(msg.contains("shards = 1"), "{msg}");
        assert!(e.tracer().is_none());
        // The serial engine still accepts.
        let mut serial = Engine::serial(cfg, flows);
        serial.enable_tracing(16).expect("serial engine traces");
        assert!(serial.tracer().is_some());
    }
}
