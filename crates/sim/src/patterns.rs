//! Classic synthetic traffic patterns (Dally & Towles — the paper's
//! baseline, reference \[11\]).
//!
//! The paper's evaluation uses task-graph traffic; these patterns
//! complement it for stress tests and latency–throughput sweeps: the
//! SMART preset compiler accepts *any* flow set, so even adversarial
//! all-to-all patterns must simulate correctly (they simply stop more).

use crate::topology::{Coord, NodeId, Topology};

/// A synthetic communication pattern over the mesh nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Every node sends to every other node (uniform random when each
    /// pair gets equal rate).
    UniformAllToAll,
    /// `(x, y)` sends to `(y, x)`.
    Transpose,
    /// Node `i` sends to `N-1-i` (bit complement on power-of-two sizes,
    /// point reflection in general).
    BitComplement,
    /// Every node sends to one hotspot.
    Hotspot(NodeId),
    /// `(x, y)` sends to `(W-1-x, y)` — horizontal mirror ("bit
    /// reversal" flavour for rows).
    RowMirror,
}

impl Pattern {
    /// The `(src, dst)` pairs this pattern induces on `topo`
    /// (self-pairs are dropped). Patterns are defined on the coordinate
    /// grid, so the pair set is the same for a mesh and a torus of equal
    /// dimensions — only the routes differ.
    #[must_use]
    pub fn pairs(self, topo: impl Into<Topology>) -> Vec<(NodeId, NodeId)> {
        let mesh = topo.into();
        let mut out = Vec::new();
        match self {
            Pattern::UniformAllToAll => {
                for s in mesh.nodes() {
                    for d in mesh.nodes() {
                        if s != d {
                            out.push((s, d));
                        }
                    }
                }
            }
            Pattern::Transpose => {
                for s in mesh.nodes() {
                    let c = mesh.coord(s);
                    if c.x < mesh.height() && c.y < mesh.width() {
                        let d = mesh.node_at(Coord { x: c.y, y: c.x });
                        if s != d {
                            out.push((s, d));
                        }
                    }
                }
            }
            Pattern::BitComplement => {
                let n = mesh.len() as u16;
                for s in mesh.nodes() {
                    let d = NodeId(n - 1 - s.0);
                    if s != d {
                        out.push((s, d));
                    }
                }
            }
            Pattern::Hotspot(h) => {
                for s in mesh.nodes() {
                    if s != h {
                        out.push((s, h));
                    }
                }
            }
            Pattern::RowMirror => {
                for s in mesh.nodes() {
                    let c = mesh.coord(s);
                    let d = mesh.node_at(Coord {
                        x: mesh.width() - 1 - c.x,
                        y: c.y,
                    });
                    if s != d {
                        out.push((s, d));
                    }
                }
            }
        }
        out
    }

    /// Short name for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Pattern::UniformAllToAll => "uniform",
            Pattern::Transpose => "transpose",
            Pattern::BitComplement => "bit-complement",
            Pattern::Hotspot(_) => "hotspot",
            Pattern::RowMirror => "row-mirror",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::paper_4x4()
    }

    #[test]
    fn uniform_is_all_ordered_pairs() {
        let pairs = Pattern::UniformAllToAll.pairs(mesh());
        assert_eq!(pairs.len(), 16 * 15);
    }

    #[test]
    fn transpose_is_an_involution() {
        let pairs = Pattern::Transpose.pairs(mesh());
        // Diagonal nodes drop out: 16 - 4 = 12 senders.
        assert_eq!(pairs.len(), 12);
        for (s, d) in &pairs {
            assert!(
                pairs.contains(&(*d, *s)),
                "transpose must be symmetric: {s}->{d}"
            );
        }
        // (1,0) = node 1 -> (0,1) = node 4.
        assert!(pairs.contains(&(NodeId(1), NodeId(4))));
    }

    #[test]
    fn bit_complement_reflects_through_center() {
        let pairs = Pattern::BitComplement.pairs(mesh());
        assert_eq!(pairs.len(), 16);
        assert!(pairs.contains(&(NodeId(0), NodeId(15))));
        assert!(pairs.contains(&(NodeId(5), NodeId(10))));
    }

    #[test]
    fn hotspot_converges_on_one_node() {
        let pairs = Pattern::Hotspot(NodeId(5)).pairs(mesh());
        assert_eq!(pairs.len(), 15);
        assert!(pairs.iter().all(|(_, d)| *d == NodeId(5)));
        assert!(pairs.iter().all(|(s, _)| *s != NodeId(5)));
    }

    #[test]
    fn row_mirror_stays_in_row() {
        let pairs = Pattern::RowMirror.pairs(mesh());
        assert_eq!(pairs.len(), 16);
        for (s, d) in pairs {
            assert_eq!(mesh().coord(s).y, mesh().coord(d).y);
        }
    }

    #[test]
    fn rectangular_transpose_skips_out_of_range() {
        let m = Mesh::new(4, 2);
        let pairs = Pattern::Transpose.pairs(m);
        // Only coordinates with x < height and y < width participate.
        for (s, _) in &pairs {
            let c = m.coord(*s);
            assert!(c.x < m.height());
        }
    }
}
