//! Cycle-accurate network-on-chip simulation substrate for the SMART
//! reproduction (DATE 2013).
//!
//! This crate provides the generic machinery — the [`topology`] layer
//! (mesh and torus fabrics), flits
//! and source [`route`]s, VC buffers and the 3-stage [`router`] pipeline,
//! virtual-cut-through credits, [`nic`]s, [`traffic`] generators, the
//! synchronous [`network`] engine, and activity [`counters`] — on which
//! `smart-core` builds the SMART architecture, the baseline mesh, and
//! the dedicated-topology yardstick.
//!
//! The central abstraction is the flow plan ([`forward::FlowPlan`]):
//! a flow's journey decomposed into single-cycle *segments* between
//! *stop routers*. The baseline mesh is the plan where every router
//! stops; SMART plans bypass entire multi-hop stretches in one cycle.
//!
//! ```
//! use smart_sim::flit::{FlowId, Packet, PacketId};
//! use smart_sim::forward::FlowTable;
//! use smart_sim::network::{Network, SimConfig};
//! use smart_sim::route::SourceRoute;
//! use smart_sim::topology::NodeId;
//!
//! // One flow across the 4x4 mesh on the baseline 3-cycle router.
//! let cfg = SimConfig::paper_4x4();
//! let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(3)).unwrap();
//! let flows = FlowTable::mesh_baseline(cfg.topology, &[(FlowId(0), route)]);
//! let mut net = Network::new(cfg, flows);
//! net.offer(Packet {
//!     id: PacketId(0),
//!     flow: FlowId(0),
//!     src: NodeId(0),
//!     dst: NodeId(3),
//!     gen_cycle: 0,
//!     num_flits: 8,
//! });
//! net.drain(100);
//! // 3 hops on the baseline: 4·3 + 4 = 16 cycles.
//! assert_eq!(net.stats().avg_network_latency(), 16.0);
//! ```
#![warn(missing_docs)]

pub mod arbiter;
pub mod counters;
pub mod flit;
pub mod forward;
pub mod network;
pub mod nic;
pub mod patterns;
pub mod route;
pub mod router;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use counters::ActivityCounters;
pub use flit::{
    Flit, FlitKind, FlowId, Packet, PacketArena, PacketId, PacketMeta, PacketSlot, VcId,
};
pub use forward::{Endpoint, FlowPlan, FlowTable, LegLut, Segment, Sender};
pub use network::{Network, SimConfig};
pub use patterns::Pattern;
pub use route::{RouteError, SourceRoute};
pub use router::{CreditRelease, Router, RouterBank, RouterDeparture};
pub use shard::{Engine, ShardPlan, ShardedNetwork};
pub use stats::SimStats;
pub use telemetry::{
    CycleView, MetricsCollector, MetricsParseError, MetricsWindow, NoProbe, Probe, StallCause,
    TelemetryConfig, TelemetrySeries,
};
pub use topology::{Coord, Direction, LinkId, Mesh, NodeId, Topology, TopologyOps, Torus, Turn};
pub use trace::{ReplayCounts, TraceError, TraceKind, TraceRecord, Tracer};
pub use traffic::{mbps_to_packet_rate, BernoulliTraffic, ScriptedTraffic, TrafficSource};
