//! Network interfaces: packet injection queues, serialization into
//! flits, and reception.
//!
//! A NIC owns the free-VC queue for the endpoint of its injection leg —
//! in SMART this can be the destination NIC itself (pure single-cycle
//! flow) or the input port of the first stop router. On the receive
//! side the NIC has `num_vcs` reception VCs; a tail arrival frees its VC
//! and returns a credit to whichever sender tracks this NIC.
//!
//! Serialization is incremental: the NIC holds the packet's arena slot
//! and a sequence counter and mints each [`Flit`] the cycle it launches,
//! so the injection hot path performs no allocation (the PR-4
//! zero-steady-state-allocation invariant).

use crate::counters::ActivityCounters;
use crate::flit::{Flit, FlowId, PacketArena, PacketMeta, PacketSlot, VcId};
use crate::topology::NodeId;
use std::collections::VecDeque;

/// A packet-latency sample produced when flits arrive at their
/// destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxEvent {
    /// A head flit arrived: `(flow, head_latency, source_queue_delay)`.
    Head(FlowId, u64, u64),
    /// A tail arrived: `(flow, packet_latency, freed_vc)`.
    Tail(FlowId, u64, VcId),
}

/// The (at most two) latency events produced by one delivered flit — a
/// fixed-size return so reception allocates nothing per flit. A
/// single-flit packet yields both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RxEvents {
    /// Set when the flit was a head.
    pub head: Option<RxEvent>,
    /// Set when the flit was a tail.
    pub tail: Option<RxEvent>,
}

/// A packet waiting in the injection queue.
#[derive(Debug, Clone, Copy)]
struct QueuedTx {
    slot: PacketSlot,
    flow: FlowId,
    num_flits: u8,
}

/// State of one in-progress packet transmission.
#[derive(Debug, Clone, Copy)]
struct CurrentTx {
    slot: PacketSlot,
    flow: FlowId,
    num_flits: u8,
    next_seq: u8,
    vc: VcId,
}

/// A network interface (one per node).
#[derive(Debug, Clone)]
pub struct Nic {
    node: NodeId,
    /// Packets waiting to enter the network, in generation order.
    inject_queue: VecDeque<QueuedTx>,
    current: Option<CurrentTx>,
    /// Free VCs at this NIC's injection-leg endpoint (only meaningful if
    /// the node sources at least one flow).
    free_vcs: VecDeque<VcId>,
    /// Reception VCs: `true` while occupied by an in-flight packet.
    rx_occupied: Vec<bool>,
    /// Head send cycle per rx VC, for packet-latency computation.
    rx_head_send: Vec<u64>,
    num_vcs: usize,
}

impl Nic {
    /// A NIC with `num_vcs` injection-endpoint and reception VCs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` is zero.
    #[must_use]
    pub fn new(node: NodeId, num_vcs: usize) -> Self {
        assert!(num_vcs > 0, "need at least one VC");
        Nic {
            node,
            inject_queue: VecDeque::new(),
            current: None,
            free_vcs: (0..num_vcs as u8).map(VcId).collect(),
            rx_occupied: vec![false; num_vcs],
            rx_head_send: vec![0; num_vcs],
            num_vcs,
        }
    }

    /// This NIC's node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Queue an interned packet for injection.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source is not this node.
    pub fn offer(&mut self, slot: PacketSlot, meta: &PacketMeta) {
        assert_eq!(meta.src, self.node, "packet offered to the wrong NIC");
        self.inject_queue.push_back(QueuedTx {
            slot,
            flow: meta.flow,
            num_flits: meta.num_flits,
        });
    }

    /// Packets (whole or partially sent) still waiting at this NIC.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.inject_queue.len() + usize::from(self.current.is_some())
    }

    /// Return a credit for the injection-leg endpoint.
    ///
    /// # Panics
    ///
    /// Panics on double-free.
    pub fn credit(&mut self, vc: VcId) {
        assert!(
            !self.free_vcs.contains(&vc),
            "{}: double credit for {vc} at NIC",
            self.node
        );
        self.free_vcs.push_back(vc);
        assert!(self.free_vcs.len() <= self.num_vcs);
    }

    /// Try to send one flit during `cycle`. Returns the flit to launch
    /// onto the injection leg, if any.
    ///
    /// A new packet starts only when the endpoint has a free VC
    /// (virtual cut-through); once started, a packet streams one flit
    /// per cycle without stalling. The head's launch cycle is stamped
    /// into the arena as the packet's injection cycle.
    pub fn try_inject(
        &mut self,
        arena: &mut PacketArena,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) -> Option<Flit> {
        if self.current.is_none() {
            let queued = *self.inject_queue.front()?;
            let vc = self.free_vcs.pop_front()?;
            self.inject_queue.pop_front();
            arena.mark_injected(queued.slot, cycle);
            counters.packets_injected += 1;
            self.current = Some(CurrentTx {
                slot: queued.slot,
                flow: queued.flow,
                num_flits: queued.num_flits,
                next_seq: 0,
                vc,
            });
        }
        let tx = self.current.as_mut().expect("set above");
        let mut flit = Flit::new(tx.slot, tx.flow, tx.next_seq, tx.num_flits);
        flit.vc = Some(tx.vc);
        tx.next_seq += 1;
        if tx.next_seq == tx.num_flits {
            self.current = None;
        }
        Some(flit)
    }

    /// Receive a flit arriving at the end of `cycle`; returns the
    /// latency events and (for tails) the freed reception VC. `meta`
    /// must be the arena entry for `flit.pkt`.
    ///
    /// # Panics
    ///
    /// Panics on reception-VC protocol violations.
    pub fn receive(
        &mut self,
        flit: Flit,
        meta: &PacketMeta,
        cycle: u64,
        counters: &mut ActivityCounters,
    ) -> RxEvents {
        let vc = flit
            .vc
            .unwrap_or_else(|| panic!("{}: flit without VC at NIC", self.node));
        let slot = vc.0 as usize;
        counters.flits_delivered += 1;
        let mut events = RxEvents::default();
        if flit.is_head() {
            assert!(
                !self.rx_occupied[slot],
                "{}: head arrived into occupied rx {vc}",
                self.node
            );
            self.rx_occupied[slot] = true;
            self.rx_head_send[slot] = meta.inject_cycle;
            let head_latency = cycle - meta.inject_cycle + 1;
            let src_q = meta.inject_cycle - meta.gen_cycle;
            events.head = Some(RxEvent::Head(flit.flow, head_latency, src_q));
        }
        if flit.is_tail() {
            assert!(
                self.rx_occupied[slot],
                "{}: tail arrived into idle rx {vc}",
                self.node
            );
            self.rx_occupied[slot] = false;
            let packet_latency = cycle - self.rx_head_send[slot] + 1;
            counters.packets_delivered += 1;
            events.tail = Some(RxEvent::Tail(flit.flow, packet_latency, vc));
        }
        events
    }

    /// `true` when nothing is queued, in flight, or half-received.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.inject_queue.is_empty()
            && self.current.is_none()
            && self.rx_occupied.iter().all(|o| !o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Packet, PacketId};

    fn packet(id: u64, n: u8) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(1),
            dst: NodeId(2),
            gen_cycle: 10,
            num_flits: n,
        }
    }

    fn offer(nic: &mut Nic, arena: &mut PacketArena, p: &Packet) -> PacketSlot {
        let slot = arena.intern(p);
        nic.offer(slot, arena.get(slot));
        slot
    }

    #[test]
    fn injects_one_flit_per_cycle() {
        let mut nic = Nic::new(NodeId(1), 2);
        let mut arena = PacketArena::new();
        let mut c = ActivityCounters::new();
        let slot = offer(&mut nic, &mut arena, &packet(1, 3));
        let f0 = nic.try_inject(&mut arena, 110, &mut c).expect("head goes");
        assert!(f0.is_head());
        assert_eq!(arena.get(slot).inject_cycle, 110);
        assert_eq!(f0.vc, Some(VcId(0)));
        let f1 = nic.try_inject(&mut arena, 111, &mut c).expect("body");
        assert!(!f1.is_head() && !f1.is_tail());
        let f2 = nic.try_inject(&mut arena, 112, &mut c).expect("tail");
        assert!(f2.is_tail());
        assert!(nic.try_inject(&mut arena, 113, &mut c).is_none());
        assert_eq!(c.packets_injected, 1);
    }

    #[test]
    fn vc_exhaustion_blocks_new_packets() {
        let mut nic = Nic::new(NodeId(1), 1);
        let mut arena = PacketArena::new();
        let mut c = ActivityCounters::new();
        offer(&mut nic, &mut arena, &packet(1, 1));
        offer(&mut nic, &mut arena, &packet(2, 1));
        assert!(nic.try_inject(&mut arena, 0, &mut c).is_some());
        // Only one endpoint VC and no credit back yet.
        assert!(nic.try_inject(&mut arena, 1, &mut c).is_none());
        assert_eq!(nic.backlog(), 1);
        nic.credit(VcId(0));
        assert!(nic.try_inject(&mut arena, 2, &mut c).is_some());
    }

    #[test]
    fn reception_produces_latency_events() {
        let src_nic_cycle = 50;
        let mut tx = Nic::new(NodeId(1), 2);
        let mut rx = Nic::new(NodeId(2), 2);
        let mut arena = PacketArena::new();
        let mut c = ActivityCounters::new();
        let slot = offer(&mut tx, &mut arena, &packet(1, 2));
        let head = tx
            .try_inject(&mut arena, src_nic_cycle, &mut c)
            .expect("head");
        let tail = tx
            .try_inject(&mut arena, src_nic_cycle + 1, &mut c)
            .expect("tail");
        // Head arrives end of cycle 50 (single-cycle SMART path):
        // network latency 1 cycle, 40 cycles of source queueing
        // (generated at 10, injected at 50).
        let ev = rx.receive(head, arena.get(slot), 50, &mut c);
        assert_eq!(ev.head, Some(RxEvent::Head(FlowId(0), 1, 40)));
        assert_eq!(ev.tail, None);
        let ev = rx.receive(tail, arena.get(slot), 51, &mut c);
        assert_eq!(ev.tail, Some(RxEvent::Tail(FlowId(0), 2, VcId(0))));
        assert_eq!(c.packets_delivered, 1);
        assert_eq!(c.flits_delivered, 2);
        assert!(rx.is_drained());
    }

    #[test]
    fn single_flit_packet_yields_both_events() {
        let mut tx = Nic::new(NodeId(1), 2);
        let mut rx = Nic::new(NodeId(2), 2);
        let mut arena = PacketArena::new();
        let mut c = ActivityCounters::new();
        let slot = offer(&mut tx, &mut arena, &packet(1, 1));
        let flit = tx.try_inject(&mut arena, 20, &mut c).expect("single flit");
        let ev = rx.receive(flit, arena.get(slot), 20, &mut c);
        assert!(matches!(ev.head, Some(RxEvent::Head(..))));
        assert!(matches!(ev.tail, Some(RxEvent::Tail(..))));
        assert!(rx.is_drained());
    }

    #[test]
    #[should_panic(expected = "wrong NIC")]
    fn wrong_source_rejected() {
        let mut nic = Nic::new(NodeId(9), 2);
        let mut arena = PacketArena::new();
        let p = packet(1, 1);
        let slot = arena.intern(&p);
        nic.offer(slot, arena.get(slot));
    }

    #[test]
    #[should_panic(expected = "double credit")]
    fn double_credit_panics() {
        let mut nic = Nic::new(NodeId(1), 2);
        nic.credit(VcId(0));
    }
}
