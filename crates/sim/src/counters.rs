//! Activity counters for power estimation.
//!
//! The simulator counts micro-architectural events; `smart-power` turns
//! them into the Fig 10b breakdown (Buffer / Allocator / Xbar(flit +
//! credit) + pipeline registers / Link) by applying per-event energies.

/// Event counts accumulated over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounters {
    /// Simulated cycles.
    pub cycles: u64,
    /// Flit writes into input-port VC buffers.
    pub buffer_writes: u64,
    /// Flit reads out of input-port VC buffers.
    pub buffer_reads: u64,
    /// Switch-allocation requests (one per candidate VC per cycle).
    pub sa_requests: u64,
    /// Switch-allocation grants.
    pub sa_grants: u64,
    /// Flit crossbar traversals (one per crossbar a flit passes,
    /// including bypassed routers' preset crossbars).
    pub xbar_flit_traversals: u64,
    /// Credit crossbar traversals on the reverse credit mesh.
    pub xbar_credit_traversals: u64,
    /// Pipeline-register writes (the baseline's ST→LT latch; one per
    /// flit per separate link cycle).
    pub pipeline_reg_writes: u64,
    /// Flit-carrying wire traversed, in mm (32-bit channel).
    pub link_flit_mm: f64,
    /// Credit-carrying wire traversed, in mm (2-bit channel).
    pub link_credit_mm: f64,
    /// Router-port cycles with the clock enabled (preset-driven gating).
    pub active_port_cycles: u64,
    /// Router-port cycles gated off.
    pub gated_port_cycles: u64,
    /// Flits delivered to destination NICs.
    pub flits_delivered: u64,
    /// Packets fully delivered (tail arrived).
    pub packets_delivered: u64,
    /// Packets injected into the network.
    pub packets_injected: u64,
}

impl ActivityCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flits still somewhere in the network (injected · flits − delivered
    /// is tracked at packet granularity by the engine; this is the
    /// packet-level balance).
    #[must_use]
    pub fn packets_in_flight(&self) -> u64 {
        self.packets_injected - self.packets_delivered
    }

    /// Add another counter set (e.g. across simulation phases).
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.cycles += other.cycles;
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.sa_requests += other.sa_requests;
        self.sa_grants += other.sa_grants;
        self.xbar_flit_traversals += other.xbar_flit_traversals;
        self.xbar_credit_traversals += other.xbar_credit_traversals;
        self.pipeline_reg_writes += other.pipeline_reg_writes;
        self.link_flit_mm += other.link_flit_mm;
        self.link_credit_mm += other.link_credit_mm;
        self.active_port_cycles += other.active_port_cycles;
        self.gated_port_cycles += other.gated_port_cycles;
        self.flits_delivered += other.flits_delivered;
        self.packets_delivered += other.packets_delivered;
        self.packets_injected += other.packets_injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ActivityCounters {
            cycles: 10,
            buffer_writes: 5,
            link_flit_mm: 1.5,
            packets_injected: 3,
            packets_delivered: 2,
            ..ActivityCounters::new()
        };
        let b = ActivityCounters {
            cycles: 7,
            buffer_writes: 2,
            link_flit_mm: 0.5,
            packets_injected: 1,
            ..ActivityCounters::new()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.buffer_writes, 7);
        assert!((a.link_flit_mm - 2.0).abs() < 1e-12);
        assert_eq!(a.packets_in_flight(), 2);
    }
}
