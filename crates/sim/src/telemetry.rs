//! Cycle-windowed telemetry: the [`Probe`] hook surface and the
//! [`MetricsCollector`] time-series built on it.
//!
//! The paper's claims are about *dynamic* behavior — how far SSR-granted
//! bypass paths actually reach per cycle, where flits stop prematurely,
//! where contention concentrates — which end-of-run aggregates cannot
//! show. This module threads a probe through the engine's hot path:
//!
//! * [`Probe`] is a **monomorphized** hook trait. The engine's step is
//!   generic over it and instantiated twice: once with [`NoProbe`]
//!   (every hook an empty inline body behind `P::ENABLED = false`, so
//!   the optimizer deletes the calls — telemetry off is provably free,
//!   gated by `perf_scorecard --gate`) and once with
//!   [`MetricsCollector`].
//! * [`MetricsCollector`] accumulates per-window counters (SSR
//!   setup/grant/deny with per-router stall causes, achieved
//!   bypass-length histogram, per-link flit deltas, injection/ejection
//!   and buffer occupancy) and closes a [`MetricsWindow`] every
//!   `window` cycles.
//! * [`TelemetrySeries`] is the finished time-series, serialized as the
//!   versioned JSONL schema `smart-telemetry/metrics-v1` (same
//!   hand-rolled style as `trace-v1`/`req-v1`). Per-shard collectors
//!   merge deterministically ([`TelemetrySeries::merge`]): every probe
//!   event fires in exactly one shard and windows close at identical
//!   global cycles, so sharded telemetry equals serial telemetry
//!   byte-for-byte.
//!
//! SSR vocabulary (Section III of the paper): a head flit presenting a
//! switch-allocation request at a stop router is an **SSR setup**; a
//! setup that wins (establishing the multi-hop hold) is a **grant**;
//! anything else is a **deny** with a [`StallCause`] — and every deny is
//! a **premature stop**, a flit parked in a buffer where an ideal run
//! would have bypassed onward.

use std::fmt;

/// Bypass-length histogram buckets: a leg crosses `0..=64` links in one
/// cycle (64 is the widest supported fabric dimension; bucket 0 is a
/// local/ejection leg that crosses no inter-router link).
pub const BYPASS_BUCKETS: usize = 65;

/// Why a presented SSR setup was denied this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The requested output had no free VC at its leg endpoint.
    NoFreeVc,
    /// The requested output is held by another packet's stream.
    HeldOutput,
    /// Lost the output's round-robin arbitration to another head.
    OutputArb,
    /// Won the output but lost the one-flit-per-input-port conflict.
    PortConflict,
}

impl StallCause {
    /// All causes, in stall-vector index order.
    pub const ALL: [StallCause; 4] = [
        StallCause::NoFreeVc,
        StallCause::HeldOutput,
        StallCause::OutputArb,
        StallCause::PortConflict,
    ];

    /// Number of causes (the per-router stall vector stride).
    pub const COUNT: usize = 4;

    /// Index of this cause within a per-router stall vector.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallCause::NoFreeVc => 0,
            StallCause::HeldOutput => 1,
            StallCause::OutputArb => 2,
            StallCause::PortConflict => 3,
        }
    }

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::NoFreeVc => "no_free_vc",
            StallCause::HeldOutput => "held_output",
            StallCause::OutputArb => "output_arb",
            StallCause::PortConflict => "port_conflict",
        }
    }
}

/// The engine state a probe may sample at the end of each cycle.
///
/// All counter fields are *cumulative since the last counter reset*;
/// the collector turns them into per-window figures by differencing.
#[derive(Debug)]
pub struct CycleView<'a> {
    /// Cycles fully processed (the cycle that just ended is `cycle - 1`
    /// in absolute terms; this is the engine's post-step clock).
    pub cycle: u64,
    /// Packets injected since the last counter reset.
    pub injected: u64,
    /// Packets delivered since the last counter reset.
    pub delivered: u64,
    /// Flits currently buffered in router input VCs.
    pub buffered: u64,
    /// Flits carried per link since the last counter reset, indexed
    /// `node * 5 + dir`.
    pub link_flits: &'a [u64],
}

/// The monomorphized telemetry hook surface.
///
/// The engine's cycle step is generic over `P: Probe` and every
/// data-gathering call is guarded by `if P::ENABLED { .. }`, so the
/// [`NoProbe`] instantiation const-folds to the exact pre-telemetry hot
/// path. Implementations must be cheap: hooks fire inside switch
/// allocation and flit launch.
pub trait Probe {
    /// `false` compiles every hook (and its argument computation) out.
    const ENABLED: bool;

    /// A flit launched onto a leg crossing `links` links in one cycle
    /// (the *achieved* bypass length; 0 = local/ejection leg).
    #[inline]
    fn on_launch(&mut self, _links: u8) {}

    /// `n` head flits presented SSR setups this cycle (at one output of
    /// one router).
    #[inline]
    fn on_ssr_setups(&mut self, _n: u32) {}

    /// One presented setup was granted (a multi-hop hold established).
    #[inline]
    fn on_ssr_grant(&mut self) {}

    /// `n` presented setups at `router` were denied for `cause` — each
    /// is a premature stop.
    #[inline]
    fn on_stall(&mut self, _router: u32, _cause: StallCause, _n: u32) {}

    /// The cycle ended; `view` exposes the sampling surface.
    #[inline]
    fn on_cycle_end(&mut self, _view: &CycleView<'_>) {}
}

/// The telemetry-off probe: every hook is a no-op the optimizer deletes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
}

/// How telemetry is collected: the windowing parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles per metrics window (a [`MetricsWindow`] closes every
    /// `window` cycles; a trailing partial window closes on detach).
    pub window: u64,
}

impl TelemetryConfig {
    /// A config snapshotting every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn windowed(window: u64) -> Self {
        assert!(window > 0, "telemetry windows must span at least 1 cycle");
        TelemetryConfig { window }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { window: 1024 }
    }
}

/// One closed metrics window: everything observed over `window` cycles
/// (or the trailing partial span) ending at `end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsWindow {
    /// Engine cycle at which the window closed.
    pub end: u64,
    /// SSR setups presented during the window.
    pub ssr_setups: u64,
    /// SSR setups granted during the window.
    pub ssr_grants: u64,
    /// Achieved bypass lengths of flit launches during the window,
    /// bucketed by links crossed ([`BYPASS_BUCKETS`] buckets).
    pub bypass: Vec<u64>,
    /// Per-router stall causes, `router * StallCause::COUNT + cause`.
    pub stalls: Vec<u64>,
    /// Flits carried per link *during this window* (delta of the
    /// cumulative per-link counts), indexed `node * 5 + dir`.
    pub link_flits: Vec<u64>,
    /// Packets injected since the last counter reset (cumulative at
    /// close, so shard merges sum to the serial figure).
    pub injected: u64,
    /// Packets delivered since the last counter reset (cumulative).
    pub delivered: u64,
    /// Flits buffered in router input VCs when the window closed.
    pub buffered: u64,
}

impl MetricsWindow {
    /// Denied setups — premature stops — during the window.
    #[must_use]
    pub fn premature_stops(&self) -> u64 {
        self.ssr_setups - self.ssr_grants
    }

    /// Packets in flight when the window closed (cumulative injected
    /// minus delivered; saturating because a mid-run counter reset lets
    /// warm-up deliveries outnumber post-reset injections).
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.injected.saturating_sub(self.delivered)
    }

    /// The window's bypass histogram in the metrics-v1 sparse form:
    /// ascending space-separated `"len:count"` pairs for nonzero
    /// buckets, empty when no flit launched.
    #[must_use]
    pub fn bypass_sparse(&self) -> String {
        render_sparse(&self.bypass)
    }
}

/// The telemetry-on probe: accumulates the current window and closes a
/// [`MetricsWindow`] every `window` cycles.
///
/// Attach one per engine (per shard when sharded) via the engine's
/// `set_telemetry`; detach with `take_telemetry`, which flushes the
/// trailing partial window and returns the [`TelemetrySeries`].
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    window: u64,
    routers: usize,
    links: usize,
    attach_cycle: u64,
    next_close: u64,
    bypass: Vec<u64>,
    ssr_setups: u64,
    ssr_grants: u64,
    stalls: Vec<u64>,
    /// Cumulative per-link counts at the last window close, for deltas.
    prev_links: Vec<u64>,
    windows: Vec<MetricsWindow>,
}

impl MetricsCollector {
    /// A collector attached at `cycle` to an engine (or shard) with
    /// `routers` routers and `links` link slots, whose cumulative
    /// per-link counts currently read `link_flits`.
    #[must_use]
    pub fn attach(cfg: TelemetryConfig, routers: usize, links: usize, cycle: u64) -> Self {
        assert!(
            cfg.window > 0,
            "telemetry windows must span at least 1 cycle"
        );
        MetricsCollector {
            window: cfg.window,
            routers,
            links,
            attach_cycle: cycle,
            next_close: cycle + cfg.window,
            bypass: vec![0; BYPASS_BUCKETS],
            ssr_setups: 0,
            ssr_grants: 0,
            stalls: vec![0; routers * StallCause::COUNT],
            prev_links: vec![0; links],
            windows: Vec::new(),
        }
    }

    /// Seed the per-link baseline from the engine's current cumulative
    /// counts (call at attach, and again after a counter reset).
    pub fn seed_links(&mut self, link_flits: &[u64]) {
        self.prev_links.copy_from_slice(link_flits);
    }

    /// End of the most recently closed window (the attach cycle before
    /// any window closed).
    fn last_close(&self) -> u64 {
        self.windows.last().map_or(self.attach_cycle, |w| w.end)
    }

    fn close(&mut self, view: &CycleView<'_>) {
        let mut link_flits = vec![0u64; self.links];
        for (d, (now, prev)) in link_flits
            .iter_mut()
            .zip(view.link_flits.iter().zip(self.prev_links.iter()))
        {
            *d = now - prev;
        }
        self.prev_links.copy_from_slice(view.link_flits);
        self.windows.push(MetricsWindow {
            end: view.cycle,
            ssr_setups: std::mem::take(&mut self.ssr_setups),
            ssr_grants: std::mem::take(&mut self.ssr_grants),
            bypass: std::mem::replace(&mut self.bypass, vec![0; BYPASS_BUCKETS]),
            stalls: std::mem::replace(&mut self.stalls, vec![0; self.routers * StallCause::COUNT]),
            link_flits,
            injected: view.injected,
            delivered: view.delivered,
            buffered: view.buffered,
        });
    }

    /// Flush the trailing partial window (if any cycles elapsed since
    /// the last close) and return the finished series.
    #[must_use]
    pub fn finish(mut self, view: &CycleView<'_>) -> TelemetrySeries {
        if view.cycle > self.last_close() {
            self.close(view);
        }
        TelemetrySeries {
            window: self.window,
            routers: self.routers,
            links: self.links,
            label: None,
            windows: self.windows,
        }
    }
}

impl Probe for MetricsCollector {
    const ENABLED: bool = true;

    #[inline]
    fn on_launch(&mut self, links: u8) {
        self.bypass[(links as usize).min(BYPASS_BUCKETS - 1)] += 1;
    }

    #[inline]
    fn on_ssr_setups(&mut self, n: u32) {
        self.ssr_setups += u64::from(n);
    }

    #[inline]
    fn on_ssr_grant(&mut self) {
        self.ssr_grants += 1;
    }

    #[inline]
    fn on_stall(&mut self, router: u32, cause: StallCause, n: u32) {
        self.stalls[router as usize * StallCause::COUNT + cause.index()] += u64::from(n);
    }

    #[inline]
    fn on_cycle_end(&mut self, view: &CycleView<'_>) {
        if view.cycle >= self.next_close {
            self.close(view);
            self.next_close += self.window;
        }
    }
}

/// A finished windowed time-series, serializable as
/// `smart-telemetry/metrics-v1` JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySeries {
    /// Cycles per window.
    pub window: u64,
    /// Routers covered (stall vectors are `routers * 4` long).
    pub routers: usize,
    /// Link slots covered (`nodes * 5`).
    pub links: usize,
    /// Optional label (schedule phases tag their series here).
    pub label: Option<String>,
    /// The closed windows, in time order.
    pub windows: Vec<MetricsWindow>,
}

/// The schema tag of the telemetry wire format.
pub const METRICS_SCHEMA: &str = "smart-telemetry/metrics-v1";

impl TelemetrySeries {
    /// Total SSR setups across all windows.
    #[must_use]
    pub fn ssr_setups(&self) -> u64 {
        self.windows.iter().map(|w| w.ssr_setups).sum()
    }

    /// Total SSR grants across all windows.
    #[must_use]
    pub fn ssr_grants(&self) -> u64 {
        self.windows.iter().map(|w| w.ssr_grants).sum()
    }

    /// Total premature stops (denied setups) across all windows.
    #[must_use]
    pub fn premature_stops(&self) -> u64 {
        self.windows
            .iter()
            .map(MetricsWindow::premature_stops)
            .sum()
    }

    /// Bypass-length histogram summed across all windows.
    #[must_use]
    pub fn bypass_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; BYPASS_BUCKETS];
        for w in &self.windows {
            for (t, b) in totals.iter_mut().zip(w.bypass.iter()) {
                *t += b;
            }
        }
        totals
    }

    /// The longest achieved bypass (highest nonzero histogram bucket),
    /// or `None` if nothing launched.
    #[must_use]
    pub fn max_bypass(&self) -> Option<usize> {
        self.bypass_totals().iter().rposition(|&n| n > 0)
    }

    /// Per-router premature-stop totals summed across windows and
    /// causes, indexed by router.
    #[must_use]
    pub fn stalls_by_router(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.routers];
        for w in &self.windows {
            for (r, t) in totals.iter_mut().enumerate() {
                let base = r * StallCause::COUNT;
                *t += w.stalls[base..base + StallCause::COUNT].iter().sum::<u64>();
            }
        }
        totals
    }

    /// Merge per-shard series into the global series, summing every
    /// window elementwise. Shards run in lockstep, so their windows
    /// close at identical cycles; each probe event fires in exactly one
    /// shard; and the cumulative counters partition across shards —
    /// the merge therefore reproduces the serial series bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if the shard series disagree on shape or window
    /// boundaries (an engine bug, not an input error).
    #[must_use]
    pub fn merge(shards: &[TelemetrySeries]) -> TelemetrySeries {
        let first = shards.first().expect("merging at least one shard series");
        let mut out = first.clone();
        for s in &shards[1..] {
            assert_eq!(s.window, out.window, "shard telemetry window mismatch");
            assert_eq!(s.routers, out.routers, "shard telemetry router mismatch");
            assert_eq!(s.links, out.links, "shard telemetry link mismatch");
            assert_eq!(
                s.windows.len(),
                out.windows.len(),
                "shard telemetry window count mismatch"
            );
            for (a, b) in out.windows.iter_mut().zip(s.windows.iter()) {
                assert_eq!(a.end, b.end, "shard telemetry window boundary mismatch");
                a.ssr_setups += b.ssr_setups;
                a.ssr_grants += b.ssr_grants;
                for (x, y) in a.bypass.iter_mut().zip(b.bypass.iter()) {
                    *x += y;
                }
                for (x, y) in a.stalls.iter_mut().zip(b.stalls.iter()) {
                    *x += y;
                }
                for (x, y) in a.link_flits.iter_mut().zip(b.link_flits.iter()) {
                    *x += y;
                }
                a.injected += b.injected;
                a.delivered += b.delivered;
                a.buffered += b.buffered;
            }
        }
        out
    }

    /// Serialize as `smart-telemetry/metrics-v1`: a header line
    /// declaring the shape, then one line per window. Vector fields use
    /// sparse `index:value` (or `router:a:b:c:d` for stalls) entries in
    /// ascending index order, so lightly loaded windows stay short.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":{:?},\"window\":{},\"routers\":{},\"links\":{}",
            METRICS_SCHEMA, self.window, self.routers, self.links
        ));
        if let Some(label) = &self.label {
            out.push_str(&format!(",\"label\":\"{}\"", escape_str(label)));
        }
        out.push_str(&format!(",\"windows\":{}}}\n", self.windows.len()));
        for w in &self.windows {
            out.push_str(&format!(
                "{{\"end\":{},\"ssr_setups\":{},\"ssr_grants\":{},\"injected\":{},\
                 \"delivered\":{},\"buffered\":{},\"bypass\":\"{}\",\"stalls\":\"{}\",\
                 \"links\":\"{}\"}}\n",
                w.end,
                w.ssr_setups,
                w.ssr_grants,
                w.injected,
                w.delivered,
                w.buffered,
                render_sparse(&w.bypass),
                render_stalls(&w.stalls),
                render_sparse(&w.link_flits),
            ));
        }
        out
    }

    /// Parse a `smart-telemetry/metrics-v1` document. Never panics on
    /// malformed input — every defect is a typed [`MetricsParseError`]
    /// naming the offending line.
    pub fn parse(text: &str) -> Result<TelemetrySeries, MetricsParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| MetricsParseError::at(1, "empty document"))?;
        let schema = str_field(header, "schema")
            .ok_or_else(|| MetricsParseError::at(1, "missing schema"))?;
        if schema != METRICS_SCHEMA {
            return Err(MetricsParseError::at(
                1,
                format!("unsupported schema {schema:?} (want {METRICS_SCHEMA:?})"),
            ));
        }
        let window = u64_field(header, "window")
            .ok_or_else(|| MetricsParseError::at(1, "missing window"))?;
        if window == 0 {
            return Err(MetricsParseError::at(1, "window must be nonzero"));
        }
        let routers = u64_field(header, "routers")
            .ok_or_else(|| MetricsParseError::at(1, "missing routers"))?
            as usize;
        let links = u64_field(header, "links")
            .ok_or_else(|| MetricsParseError::at(1, "missing links"))? as usize;
        let declared = u64_field(header, "windows")
            .ok_or_else(|| MetricsParseError::at(1, "missing window count"))?;
        let label = match str_field(header, "label") {
            Some(raw) => Some(
                unescape_str(&raw)
                    .ok_or_else(|| MetricsParseError::at(1, "malformed label escape"))?,
            ),
            None => None,
        };
        let mut windows = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let field = |key: &str| {
                u64_field(line, key)
                    .ok_or_else(|| MetricsParseError::at(lineno, format!("missing {key}")))
            };
            let sparse = |key: &str, len: usize| -> Result<Vec<u64>, MetricsParseError> {
                let raw = str_field(line, key)
                    .ok_or_else(|| MetricsParseError::at(lineno, format!("missing {key}")))?;
                parse_sparse(&raw, len).map_err(|m| {
                    MetricsParseError::at(lineno, format!("malformed {key} entry: {m}"))
                })
            };
            windows.push(MetricsWindow {
                end: field("end")?,
                ssr_setups: field("ssr_setups")?,
                ssr_grants: field("ssr_grants")?,
                injected: field("injected")?,
                delivered: field("delivered")?,
                buffered: field("buffered")?,
                bypass: sparse("bypass", BYPASS_BUCKETS)?,
                stalls: {
                    let raw = str_field(line, "stalls").ok_or_else(|| {
                        MetricsParseError::at(lineno, "missing stalls".to_owned())
                    })?;
                    parse_stalls(&raw, routers).map_err(|m| {
                        MetricsParseError::at(lineno, format!("malformed stalls entry: {m}"))
                    })?
                },
                link_flits: sparse("links", links)?,
            });
        }
        if windows.len() as u64 != declared {
            return Err(MetricsParseError::at(
                1,
                format!(
                    "header declares {declared} windows, found {}",
                    windows.len()
                ),
            ));
        }
        Ok(TelemetrySeries {
            window,
            routers,
            links,
            label,
            windows,
        })
    }
}

/// A defect found while parsing a metrics-v1 document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsParseError {
    /// 1-based line of the defect.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl MetricsParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        MetricsParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for MetricsParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MetricsParseError {}

/// Sparse vector encoding: ascending `index:value` entries for nonzero
/// slots, space separated; the empty string is the zero vector.
fn render_sparse(v: &[u64]) -> String {
    let mut out = String::new();
    for (i, n) in v.iter().enumerate().filter(|(_, n)| **n > 0) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!("{i}:{n}"));
    }
    out
}

fn parse_sparse(raw: &str, len: usize) -> Result<Vec<u64>, String> {
    let mut v = vec![0u64; len];
    for entry in raw.split_ascii_whitespace() {
        let (i, n) = entry
            .split_once(':')
            .ok_or_else(|| format!("{entry:?} is not index:value"))?;
        let i: usize = i.parse().map_err(|_| format!("bad index in {entry:?}"))?;
        let n: u64 = n.parse().map_err(|_| format!("bad value in {entry:?}"))?;
        if i >= len {
            return Err(format!("index {i} out of range (len {len})"));
        }
        v[i] = n;
    }
    Ok(v)
}

/// Stall encoding: ascending `router:a:b:c:d` entries (the four
/// [`StallCause`]s) for routers with any nonzero cause.
fn render_stalls(stalls: &[u64]) -> String {
    let mut out = String::new();
    for (r, chunk) in stalls.chunks_exact(StallCause::COUNT).enumerate() {
        if chunk.iter().all(|&n| n == 0) {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!(
            "{r}:{}:{}:{}:{}",
            chunk[0], chunk[1], chunk[2], chunk[3]
        ));
    }
    out
}

fn parse_stalls(raw: &str, routers: usize) -> Result<Vec<u64>, String> {
    let mut v = vec![0u64; routers * StallCause::COUNT];
    for entry in raw.split_ascii_whitespace() {
        let mut parts = entry.split(':');
        let r: usize = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad router in {entry:?}"))?;
        if r >= routers {
            return Err(format!("router {r} out of range ({routers} routers)"));
        }
        for c in 0..StallCause::COUNT {
            v[r * StallCause::COUNT + c] = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| format!("missing cause {c} in {entry:?}"))?;
        }
        if parts.next().is_some() {
            return Err(format!("too many causes in {entry:?}"));
        }
    }
    Ok(v)
}

/// Minimal JSON string escaping for labels (quote, backslash, control
/// chars) — the telemetry layer cannot depend on the server's helpers.
fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn unescape_str(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'u' => {
                let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extract the raw (still-escaped) value of a `"key":"value"` string
/// field.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'"' => return Some(rest[..end].to_owned()),
            b'\\' => end += 2,
            _ => end += 1,
        }
    }
    None
}

/// Extract the value of a `"key":123` numeric field.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(cycle: u64, links: &[u64]) -> CycleView<'_> {
        CycleView {
            cycle,
            injected: cycle * 2,
            delivered: cycle,
            buffered: 3,
            link_flits: links,
        }
    }

    #[test]
    fn collector_closes_windows_on_schedule() {
        let mut c = MetricsCollector::attach(TelemetryConfig::windowed(10), 2, 4, 100);
        let links = [5u64, 0, 7, 0];
        c.on_launch(3);
        c.on_ssr_setups(2);
        c.on_ssr_grant();
        c.on_stall(1, StallCause::OutputArb, 1);
        for cy in 101..=110 {
            c.on_cycle_end(&view(cy, &links));
        }
        assert_eq!(c.windows.len(), 1);
        let w = &c.windows[0];
        assert_eq!(w.end, 110);
        assert_eq!(w.ssr_setups, 2);
        assert_eq!(w.ssr_grants, 1);
        assert_eq!(w.premature_stops(), 1);
        assert_eq!(w.bypass[3], 1);
        assert_eq!(w.stalls[StallCause::COUNT + 2], 1);
        assert_eq!(w.link_flits, vec![5, 0, 7, 0]);
        // Second window sees only the delta.
        let links2 = [6u64, 0, 7, 1];
        let series = c.finish(&view(115, &links2));
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[1].end, 115, "partial window flushed");
        assert_eq!(series.windows[1].link_flits, vec![1, 0, 0, 1]);
    }

    #[test]
    fn finish_without_progress_adds_no_window() {
        let mut c = MetricsCollector::attach(TelemetryConfig::windowed(10), 1, 2, 0);
        let links = [4u64, 4];
        for cy in 1..=10 {
            c.on_cycle_end(&view(cy, &links));
        }
        let series = c.finish(&view(10, &links));
        assert_eq!(series.windows.len(), 1);
    }

    #[test]
    fn series_round_trips_via_jsonl() {
        let series = TelemetrySeries {
            window: 10,
            routers: 2,
            links: 4,
            label: Some("phase0:VOPD \"live\"\n".to_owned()),
            windows: vec![MetricsWindow {
                end: 110,
                ssr_setups: 9,
                ssr_grants: 4,
                bypass: {
                    let mut b = vec![0; BYPASS_BUCKETS];
                    b[0] = 2;
                    b[8] = 5;
                    b
                },
                stalls: vec![0, 0, 0, 0, 1, 2, 3, 4],
                link_flits: vec![0, 9, 0, 1],
                injected: 20,
                delivered: 11,
                buffered: 6,
            }],
        };
        let text = series.to_jsonl();
        let parsed = TelemetrySeries::parse(&text).expect("round trip");
        assert_eq!(parsed, series);
        assert_eq!(parsed.to_jsonl(), text, "canonical form is stable");
    }

    #[test]
    fn merge_sums_shard_windows() {
        let mk = |setups: u64, link0: u64| TelemetrySeries {
            window: 5,
            routers: 1,
            links: 2,
            label: None,
            windows: vec![MetricsWindow {
                end: 5,
                ssr_setups: setups,
                ssr_grants: setups / 2,
                bypass: vec![0; BYPASS_BUCKETS],
                stalls: vec![1, 0, 0, 0],
                link_flits: vec![link0, 0],
                injected: 4,
                delivered: 2,
                buffered: 1,
            }],
        };
        let merged = TelemetrySeries::merge(&[mk(4, 10), mk(6, 3)]);
        assert_eq!(merged.windows[0].ssr_setups, 10);
        assert_eq!(merged.windows[0].ssr_grants, 5);
        assert_eq!(merged.windows[0].stalls[0], 2);
        assert_eq!(merged.windows[0].link_flits[0], 13);
        assert_eq!(merged.windows[0].injected, 8);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(TelemetrySeries::parse("").is_err());
        assert!(TelemetrySeries::parse("{\"schema\":\"wrong/v9\"}").is_err());
        let missing = format!("{{\"schema\":{METRICS_SCHEMA:?},\"window\":10}}");
        assert!(TelemetrySeries::parse(&missing).is_err());
        let bad_count = format!(
            "{{\"schema\":{METRICS_SCHEMA:?},\"window\":10,\"routers\":1,\"links\":2,\"windows\":3}}"
        );
        let err = TelemetrySeries::parse(&bad_count).expect_err("count mismatch");
        assert!(err.to_string().contains("declares 3"), "{err}");
        let bad_sparse = format!(
            "{{\"schema\":{METRICS_SCHEMA:?},\"window\":10,\"routers\":1,\"links\":2,\"windows\":1}}\n\
             {{\"end\":5,\"ssr_setups\":0,\"ssr_grants\":0,\"injected\":0,\"delivered\":0,\
             \"buffered\":0,\"bypass\":\"99:1\",\"stalls\":\"\",\"links\":\"\"}}"
        );
        assert!(TelemetrySeries::parse(&bad_sparse).is_err(), "oob bucket");
    }

    #[test]
    fn stall_cause_indices_are_stable() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
