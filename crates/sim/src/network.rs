//! The synchronous network engine.
//!
//! Drives routers and NICs through a deterministic per-cycle schedule:
//!
//! 1. apply credit returns scheduled for this cycle;
//! 2. apply flit arrivals (buffer writes / NIC deliveries);
//! 3. NIC injection (one flit per NIC per cycle);
//! 4. switch allocation at every router; granted flits traverse their
//!    leg (`ST+LT`) and are scheduled to arrive at its end;
//! 5. accounting (clock gating, cycle counters).
//!
//! The engine enforces the SMART preset invariant at runtime: **no two
//! flits may cross the same link in the same cycle** — if a preset
//! compiler produced plans that violate single-cycle exclusivity, the
//! engine panics rather than silently time-multiplexing the wire.

use crate::counters::ActivityCounters;
use crate::flit::{Flit, Packet, PacketArena, VcId};
use crate::forward::{Endpoint, FlowTable, LegLut, Sender};
use crate::nic::{Nic, RxEvent};
use crate::router::{CreditRelease, RouterBank, RouterDeparture};
use crate::stats::SimStats;
use crate::telemetry::{
    CycleView, MetricsCollector, NoProbe, Probe, TelemetryConfig, TelemetrySeries,
};
use crate::topology::{Direction, LinkId, NodeId, Topology, PORTS};
use crate::trace::{TraceKind, TraceRecord, Tracer};
use crate::traffic::TrafficSource;

/// Sizing parameters shared by all designs (Table II defaults via
/// [`SimConfig::paper_4x4`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Fabric shape (mesh or torus) and dimensions.
    pub topology: Topology,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Flits of buffering per VC.
    pub vc_depth: usize,
    /// Flits per packet (packet size / flit size).
    pub flits_per_packet: u8,
}

impl SimConfig {
    /// Table II: 4×4 mesh, 2 VCs × 10 flits, 256-bit packets of 32-bit
    /// flits.
    #[must_use]
    pub fn paper_4x4() -> Self {
        SimConfig {
            topology: crate::topology::Mesh::paper_4x4().into(),
            vcs_per_port: 2,
            vc_depth: 10,
            flits_per_packet: 8,
        }
    }

    /// Validate invariants (virtual cut-through needs whole packets to
    /// fit in one VC).
    ///
    /// # Panics
    ///
    /// Panics if a packet cannot fit in a VC buffer.
    pub fn validate(&self) {
        assert!(
            usize::from(self.flits_per_packet) <= self.vc_depth,
            "virtual cut-through requires vc_depth >= flits_per_packet"
        );
        assert!(self.vcs_per_port > 0 && self.flits_per_packet > 0);
    }
}

/// Ring-buffer depth for scheduled events (max lookahead is 4 cycles).
pub(crate) const RING: usize = 16;

/// The precomputed reverse path of a credit: which sender's free-VC
/// queue gets the freed VC back, and the leg cost charged to the credit
/// network.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditPath {
    pub(crate) sender: Sender,
    pub(crate) crossbars: u32,
    pub(crate) mm: f64,
}

/// The single-cycle link-exclusivity guard as a two-plane bitset: one
/// bit per link (indexed `node * 5 + dir`), one plane per ST-cycle
/// parity.
///
/// During `step(c)` launches stamp ST cycles `c` (NIC injections) and
/// `c + 1` (router departures), so two cycles are in flight at once —
/// each gets its own plane. A plane is reset lazily: the first mark for
/// a new cycle clears only the words dirtied under the previous cycle
/// of the same parity, so steady-state cost scales with links *used*,
/// not links present.
#[derive(Debug)]
struct LinkGuard {
    words: [Vec<u64>; 2],
    /// The ST cycle each plane currently describes (`u64::MAX` = none).
    plane_cycle: [u64; 2],
    /// Indices of nonzero words per plane, for lazy clearing.
    dirty: [Vec<u32>; 2],
}

impl LinkGuard {
    fn new(n_links: usize) -> Self {
        let words = n_links.div_ceil(64);
        LinkGuard {
            words: [vec![0; words], vec![0; words]],
            plane_cycle: [u64::MAX, u64::MAX],
            dirty: [Vec::new(), Vec::new()],
        }
    }

    /// Claim link `li` for `st_cycle`; `false` means a second flit tried
    /// to cross the same link in the same cycle.
    fn try_mark(&mut self, li: usize, st_cycle: u64) -> bool {
        let p = (st_cycle & 1) as usize;
        if self.plane_cycle[p] != st_cycle {
            for &w in &self.dirty[p] {
                self.words[p][w as usize] = 0;
            }
            self.dirty[p].clear();
            self.plane_cycle[p] = st_cycle;
        }
        let (w, bit) = (li / 64, 1u64 << (li % 64));
        let word = &mut self.words[p][w];
        if *word & bit != 0 {
            return false;
        }
        if *word == 0 {
            self.dirty[p].push(w as u32);
        }
        *word |= bit;
        true
    }
}

/// Everything in flight between routers: the arrival/credit event rings
/// and the dense per-link occupancy arrays. Grouped so the launch path
/// can borrow it independently of the route tables.
#[derive(Debug)]
struct Flight {
    arrivals: Vec<Vec<(Endpoint, Flit)>>,
    credit_ring: Vec<Vec<(Sender, VcId)>>,
    /// Arrivals scheduled but not yet applied (quiescence check).
    scheduled_arrivals: usize,
    /// Single-cycle exclusivity bitset.
    link_guard: LinkGuard,
    /// Flits carried per link since the last counter reset, indexed
    /// `node * 5 + dir`.
    link_flits: Vec<u64>,
}

/// The simulated network: the router bank + NICs + in-flight events.
#[derive(Debug)]
pub struct Network {
    cfg: SimConfig,
    flows: FlowTable,
    /// Dense leg lookup compiled from `flows` at build time.
    lut: LegLut,
    bank: RouterBank,
    nics: Vec<Nic>,
    /// Metadata of every live packet; flits carry an arena slot instead
    /// of the per-packet fields.
    arena: PacketArena,
    /// Credit reverse paths for stop endpoints, indexed
    /// `router * 5 + in_dir`.
    stop_credit: Vec<Option<CreditPath>>,
    /// Credit reverse paths for NIC endpoints, indexed by node.
    nic_credit: Vec<Option<CreditPath>>,
    flight: Flight,
    cycle: u64,
    counters: ActivityCounters,
    stats: SimStats,
    stats_from: u64,
    enabled_ports: u64,
    total_ports: u64,
    tracer: Option<Tracer>,
    /// Windowed metrics collector; `None` selects the [`NoProbe`] step,
    /// whose hooks the optimizer deletes (telemetry off is free).
    telemetry: Option<Box<MetricsCollector>>,
    /// NICs with a nonzero injection backlog, ascending — the only
    /// NICs the per-cycle injection scan visits. Kept sorted so the
    /// scan order (and therefore every downstream event order) matches
    /// a full 0..n sweep exactly.
    active_nics: Vec<u32>,
    /// Membership mask for `active_nics`, indexed by node.
    nic_active: Vec<bool>,
    /// Per-cycle scratch, reused so the steady state allocates nothing.
    arrival_scratch: Vec<(Endpoint, Flit)>,
    credit_scratch: Vec<(Sender, VcId)>,
    dep_scratch: Vec<RouterDeparture>,
    rel_scratch: Vec<CreditRelease>,
}

impl Network {
    /// Build a network for `flows` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the flow plans are inconsistent
    /// (see [`FlowTable::sender_endpoints`]).
    #[must_use]
    pub fn new(cfg: SimConfig, flows: FlowTable) -> Self {
        cfg.validate();
        let n = cfg.topology.len();
        let mut bank = RouterBank::new(n, cfg.vcs_per_port, cfg.vc_depth);
        let nics: Vec<Nic> = cfg
            .topology
            .nodes()
            .map(|id| Nic::new(id, cfg.vcs_per_port))
            .collect();

        // Preset-driven port enables + credit reverse-path tables. The
        // sender/endpoint pairing invariant is checked up front.
        let _ = flows.sender_endpoints();
        let mut stop_credit = vec![None; n * PORTS];
        let mut nic_credit = vec![None; n];
        for plan in flows.iter() {
            for leg in &plan.legs {
                if let Sender::RouterOutput(r, d) = leg.sender {
                    bank.enable_output(r.0 as usize, d);
                }
                for link in &leg.links {
                    bank.enable_output(link.from.0 as usize, link.dir);
                    let to = cfg
                        .topology
                        .neighbor(link.from, link.dir)
                        .unwrap_or_else(|| panic!("{link} leaves the fabric"));
                    bank.enable_input(to.0 as usize, link.dir.opposite());
                }
                let path = Some(CreditPath {
                    sender: leg.sender,
                    crossbars: leg.crossbars(),
                    mm: leg.link_mm(),
                });
                match leg.end {
                    Endpoint::Stop { router, in_dir } => {
                        bank.enable_input(router.0 as usize, in_dir);
                        stop_credit[router.0 as usize * PORTS + in_dir.index()] = path;
                    }
                    Endpoint::Nic { node } => nic_credit[node.0 as usize] = path,
                }
            }
        }

        let enabled_ports: u64 = (0..n).map(|r| bank.enabled_ports(r) as u64).sum();
        let total_ports = (n * 10) as u64; // 5 in + 5 out per router
        let lut = LegLut::new(&flows);

        Network {
            cfg,
            flows,
            lut,
            bank,
            nics,
            arena: PacketArena::new(),
            stop_credit,
            nic_credit,
            flight: Flight {
                arrivals: vec![Vec::new(); RING],
                credit_ring: vec![Vec::new(); RING],
                scheduled_arrivals: 0,
                link_guard: LinkGuard::new(n * PORTS),
                link_flits: vec![0; n * PORTS],
            },
            cycle: 0,
            counters: ActivityCounters::new(),
            stats: SimStats::new(),
            stats_from: 0,
            enabled_ports,
            total_ports,
            tracer: None,
            telemetry: None,
            active_nics: Vec::new(),
            nic_active: vec![false; n],
            arrival_scratch: Vec::new(),
            credit_scratch: Vec::new(),
            dep_scratch: Vec::new(),
            rel_scratch: Vec::new(),
        }
    }

    /// Record micro-architectural events (up to `capacity` of them) for
    /// journey logs, VCD dumps and counter cross-validation.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::with_capacity(capacity));
    }

    /// The tracer, if tracing is enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Start collecting windowed telemetry (see [`crate::telemetry`]).
    /// Windows are measured from the current cycle; per-link deltas are
    /// measured from the current cumulative counts. Replaces any
    /// collector already attached.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        let n = self.cfg.topology.len();
        let mut collector = Box::new(MetricsCollector::attach(cfg, n, n * PORTS, self.cycle));
        collector.seed_links(&self.flight.link_flits);
        self.telemetry = Some(collector);
    }

    /// Detach the telemetry collector, flushing the trailing partial
    /// window. `None` if telemetry was never enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        let collector = self.telemetry.take()?;
        Some(collector.finish(&CycleView {
            cycle: self.cycle,
            injected: self.counters.packets_injected,
            delivered: self.counters.packets_delivered,
            buffered: self.bank.total_buffered(),
            link_flits: &self.flight.link_flits,
        }))
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// The topology being simulated.
    #[must_use]
    pub fn topology(&self) -> Topology {
        self.cfg.topology
    }

    /// The flow table in use.
    #[must_use]
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Current cycle (cycles fully processed).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Activity counters accumulated since the last reset.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Only packets *generated* at or after `cycle` contribute to
    /// latency statistics (warm-up exclusion).
    pub fn set_stats_from(&mut self, cycle: u64) {
        self.stats_from = cycle;
    }

    /// Zero the activity counters (e.g. at the end of warm-up).
    pub fn reset_counters(&mut self) {
        self.counters = ActivityCounters::new();
        self.flight.link_flits.fill(0);
        if let Some(t) = self.telemetry.as_mut() {
            t.seed_links(&self.flight.link_flits);
        }
    }

    /// Flits carried per link since the last counter reset — the
    /// utilization heatmap's raw data. A borrowing iterator over the
    /// engine's dense per-link array (no per-call allocation); links
    /// that carried nothing are skipped.
    pub fn link_flit_counts(&self) -> impl Iterator<Item = (LinkId, u64)> + '_ {
        self.flight
            .link_flits
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                (
                    LinkId {
                        from: NodeId((i / PORTS) as u16),
                        dir: Direction::from_index(i % PORTS),
                    },
                    *n,
                )
            })
    }

    /// Queue a generated packet at its source NIC, interning its
    /// metadata into the packet arena.
    ///
    /// # Panics
    ///
    /// Panics if the packet's flow is unknown or its src/dst disagree
    /// with the flow's route.
    pub fn offer(&mut self, packet: Packet) {
        let plan = self.flows.plan(packet.flow);
        assert_eq!(packet.src, plan.route.source(), "packet src mismatch");
        assert_eq!(
            packet.dst,
            plan.route.destination(self.cfg.topology),
            "packet dst mismatch"
        );
        let src = packet.src.0 as usize;
        let slot = self.arena.intern(&packet);
        self.nics[src].offer(slot, self.arena.get(slot));
        if !self.nic_active[src] {
            self.nic_active[src] = true;
            let pos = self
                .active_nics
                .binary_search(&(src as u32))
                .expect_err("mask says absent");
            self.active_nics.insert(pos, src as u32);
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        // Monomorphized probe dispatch: the collector is moved out for
        // the duration of the step (a pointer move), selecting the
        // telemetry instantiation; without one the `NoProbe` step runs —
        // the exact pre-telemetry hot path after const folding.
        if let Some(mut t) = self.telemetry.take() {
            self.step_probed(&mut *t);
            self.telemetry = Some(t);
        } else {
            self.step_probed(&mut NoProbe);
        }
    }

    fn step_probed<P: Probe>(&mut self, probe: &mut P) {
        let c = self.cycle;
        let slot = (c % RING as u64) as usize;

        // 1. Credits landing this cycle (swapped out through the scratch
        // buffer so ring-slot capacity is reused, not reallocated).
        let mut credits = std::mem::take(&mut self.credit_scratch);
        std::mem::swap(&mut credits, &mut self.flight.credit_ring[slot]);
        for (sender, vc) in credits.drain(..) {
            match sender {
                Sender::Nic(n) => self.nics[n.0 as usize].credit(vc),
                Sender::RouterOutput(r, d) => self.bank.credit(r.0 as usize, d, vc),
            }
        }
        self.credit_scratch = credits;

        // 2. Flit arrivals (scheduled for end of cycle c-1).
        let mut arrivals = std::mem::take(&mut self.arrival_scratch);
        std::mem::swap(&mut arrivals, &mut self.flight.arrivals[slot]);
        self.flight.scheduled_arrivals -= arrivals.len();
        for (end, flit) in arrivals.drain(..) {
            match end {
                Endpoint::Stop { router, in_dir } => {
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: c.saturating_sub(1),
                            flow: flit.flow,
                            packet: self.arena.get(flit.pkt).id,
                            kind: TraceKind::BufferWrite { router, in_dir },
                        });
                    }
                    self.bank.receive(
                        router.0 as usize,
                        in_dir,
                        flit,
                        c.saturating_sub(1),
                        &mut self.counters,
                    );
                }
                Endpoint::Nic { node } => {
                    let arrival_cycle = c - 1;
                    let meta = *self.arena.get(flit.pkt);
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: arrival_cycle,
                            flow: flit.flow,
                            packet: meta.id,
                            kind: TraceKind::Deliver {
                                node,
                                head: flit.is_head(),
                                tail: flit.is_tail(),
                            },
                        });
                    }
                    let events = self.nics[node.0 as usize].receive(
                        flit,
                        &meta,
                        arrival_cycle,
                        &mut self.counters,
                    );
                    if let Some(RxEvent::Head(flow, lat, srcq)) = events.head {
                        if meta.gen_cycle >= self.stats_from {
                            self.stats.record_head(flow, lat, srcq);
                        }
                    }
                    if let Some(RxEvent::Tail(flow, lat, vc)) = events.tail {
                        if meta.gen_cycle >= self.stats_from {
                            self.stats.record_tail(flow, lat);
                        }
                        // Credit for the freed NIC reception VC.
                        let path = self.nic_credit[node.0 as usize]
                            .unwrap_or_else(|| panic!("no sender tracks endpoint {end:?}"));
                        emit_credit(
                            path,
                            vc,
                            c + 1,
                            Sinks {
                                flight: &mut self.flight,
                                counters: &mut self.counters,
                                tracer: &mut self.tracer,
                            },
                        );
                        // Whole packet delivered: its metadata slot can
                        // be recycled.
                        self.arena.release(flit.pkt);
                    }
                }
            }
        }
        self.arrival_scratch = arrivals;

        // 3. NIC injection, scanning only the active set (NICs with a
        // backlog). A NIC whose backlog empties retires from the set in
        // place; the compaction preserves ascending order, so the event
        // stream is bit-identical to a full 0..n sweep. Skipped idle
        // NICs would have returned `None` without touching any state.
        let mut kept = 0;
        for k in 0..self.active_nics.len() {
            let i = self.active_nics[k] as usize;
            if let Some(flit) = self.nics[i].try_inject(&mut self.arena, c, &mut self.counters) {
                let leg = self.lut.first_leg_idx(flit.flow);
                debug_assert!(
                    matches!(self.lut.rec(leg).sender, Sender::Nic(n) if n.0 as usize == i)
                );
                launch(
                    &self.lut,
                    &self.arena,
                    leg,
                    flit,
                    c,
                    Sinks {
                        flight: &mut self.flight,
                        counters: &mut self.counters,
                        tracer: &mut self.tracer,
                    },
                    probe,
                );
            }
            if self.nics[i].backlog() > 0 {
                self.active_nics[kept] = self.active_nics[k];
                kept += 1;
            } else {
                self.nic_active[i] = false;
            }
        }
        self.active_nics.truncate(kept);

        // 4. Switch allocation; ST happens during c + 1. Departures and
        // credit releases land in reused scratch vectors, and routers
        // with nothing buffered are skipped without touching their
        // state.
        // The allocation sweep touches only bank state; departures and
        // credit releases batch across routers and replay afterwards in
        // the same ascending-router order the per-router drains used, so
        // each flight ring receives an identical push sequence.
        let mut deps = std::mem::take(&mut self.dep_scratch);
        let mut rels = std::mem::take(&mut self.rel_scratch);
        deps.clear();
        rels.clear();
        for r in 0..self.bank.len() {
            if self.bank.is_drained(r) {
                continue;
            }
            let node = NodeId(r as u16);
            let lut = &self.lut;
            self.bank.allocate(
                r,
                c,
                |flow| {
                    let leg = lut.leg_idx_from(flow, node);
                    (lut.rec(leg).out_dir, leg)
                },
                &mut self.counters,
                &mut deps,
                &mut rels,
                probe,
            );
        }
        for dep in deps.drain(..) {
            let rec = self.lut.rec(dep.leg);
            assert_eq!(
                rec.out_dir, dep.out_dir,
                "plan/grant mismatch on leg {}",
                dep.leg
            );
            launch(
                &self.lut,
                &self.arena,
                dep.leg,
                dep.flit,
                c + 1,
                Sinks {
                    flight: &mut self.flight,
                    counters: &mut self.counters,
                    tracer: &mut self.tracer,
                },
                probe,
            );
        }
        for rel in rels.drain(..) {
            // Tail departs the buffer during c+1; the credit crosses
            // the reverse mesh during c+2 and is usable at c+3.
            let r = usize::from(rel.router);
            let path = self.stop_credit[r * PORTS + rel.in_dir.index()].unwrap_or_else(|| {
                panic!(
                    "no sender tracks endpoint {}/{}",
                    NodeId(rel.router),
                    rel.in_dir
                )
            });
            emit_credit(
                path,
                rel.vc,
                c + 3,
                Sinks {
                    flight: &mut self.flight,
                    counters: &mut self.counters,
                    tracer: &mut self.tracer,
                },
            );
        }
        self.dep_scratch = deps;
        self.rel_scratch = rels;

        // 5. Gating + cycle accounting.
        self.counters.active_port_cycles += self.enabled_ports;
        self.counters.gated_port_cycles += self.total_ports - self.enabled_ports;
        self.counters.cycles += 1;
        self.cycle += 1;
        if P::ENABLED {
            probe.on_cycle_end(&CycleView {
                cycle: self.cycle,
                injected: self.counters.packets_injected,
                delivered: self.counters.packets_delivered,
                buffered: self.bank.total_buffered(),
                link_flits: &self.flight.link_flits,
            });
        }
    }

    /// Run `cycles` cycles, pulling packets from `traffic` each cycle.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        for _ in 0..cycles {
            let pkts = traffic.generate(self.cycle);
            for p in pkts {
                self.offer(p);
            }
            self.step();
        }
    }

    /// `true` when no packet is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.bank.total_buffered() == 0
            && self.flight.scheduled_arrivals == 0
            && self.nics.iter().all(Nic::is_drained)
    }

    /// Step until quiescent, up to `max_cycles`. Returns `true` if the
    /// network drained (the precondition for reconfiguration, Section V).
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// Injection backlog across all NICs.
    #[must_use]
    pub fn total_backlog(&self) -> usize {
        self.nics.iter().map(Nic::backlog).sum()
    }
}

/// The engine's mutable in-flight sinks — everything a launch or a
/// credit emission writes into — split from `Network` so callers can
/// keep borrowing the route tables a `leg` reference lives in.
struct Sinks<'a> {
    flight: &'a mut Flight,
    counters: &'a mut ActivityCounters,
    tracer: &'a mut Option<Tracer>,
}

/// Launch `flit` onto `leg`, with ST (and the whole link traversal)
/// occurring during `st_cycle`.
fn launch<P: Probe>(
    lut: &LegLut,
    arena: &PacketArena,
    leg: u32,
    flit: Flit,
    st_cycle: u64,
    s: Sinks<'_>,
    probe: &mut P,
) {
    let Sinks {
        flight,
        counters,
        tracer,
    } = s;
    let rec = *lut.rec(leg);
    // Single-cycle link exclusivity (the preset invariant), enforced by
    // the two-plane guard bitset over precomputed dense link indices.
    for &li in lut.rec_links(&rec) {
        let li = li as usize;
        assert!(
            flight.link_guard.try_mark(li, st_cycle),
            "two flits on {} in cycle {st_cycle}: preset violation",
            LinkId {
                from: NodeId((li / PORTS) as u16),
                dir: Direction::from_index(li % PORTS),
            }
        );
        flight.link_flits[li] += 1;
    }
    counters.xbar_flit_traversals += u64::from(rec.crossbars);
    counters.link_flit_mm += rec.mm;
    if rec.cycles == 2 {
        counters.pipeline_reg_writes += 1;
    }
    if P::ENABLED {
        // Achieved bypass length: links this leg crosses in one cycle.
        probe.on_launch(rec.n_links);
    }
    if let Some(t) = tracer.as_mut() {
        let from = match rec.sender {
            Sender::Nic(n) | Sender::RouterOutput(n, _) => n,
        };
        t.record(TraceRecord {
            cycle: st_cycle,
            flow: flit.flow,
            packet: arena.get(flit.pkt).id,
            kind: TraceKind::Launch {
                from,
                links: rec.n_links,
                crossbars: rec.crossbars as u8,
                mm: rec.mm,
            },
        });
    }
    let arrival = st_cycle + u64::from(rec.cycles) - 1;
    let slot = ((arrival + 1) % RING as u64) as usize;
    flight.arrivals[slot].push((rec.end, flit));
    flight.scheduled_arrivals += 1;
}

/// Schedule the credit for a freed VC back along `path` to its sender,
/// usable at `apply_cycle`.
fn emit_credit(path: CreditPath, vc: VcId, apply_cycle: u64, s: Sinks<'_>) {
    let Sinks {
        flight,
        counters,
        tracer,
    } = s;
    counters.xbar_credit_traversals += u64::from(path.crossbars);
    counters.link_credit_mm += path.mm;
    if let Some(t) = tracer.as_mut() {
        t.record(TraceRecord {
            cycle: apply_cycle.saturating_sub(2),
            flow: crate::flit::FlowId(u32::MAX),
            packet: crate::flit::PacketId(u64::MAX),
            kind: TraceKind::Credit {
                crossbars: path.crossbars as u8,
                mm: path.mm,
            },
        });
    }
    let slot = (apply_cycle % RING as u64) as usize;
    flight.credit_ring[slot].push((path.sender, vc));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, PacketId};
    use crate::route::SourceRoute;
    use crate::traffic::ScriptedTraffic;

    fn one_flow_net(src: u16, dst: u16) -> (Network, FlowId) {
        let cfg = SimConfig::paper_4x4();
        let flow = FlowId(0);
        let route = SourceRoute::xy(cfg.topology, NodeId(src), NodeId(dst)).unwrap();
        let table = FlowTable::mesh_baseline(cfg.topology, &[(flow, route)]);
        (Network::new(cfg, table), flow)
    }

    fn packet(flow: FlowId, src: u16, dst: u16, gen: u64, n: u8) -> Packet {
        Packet {
            id: PacketId(gen),
            flow,
            src: NodeId(src),
            dst: NodeId(dst),
            gen_cycle: gen,
            num_flits: n,
        }
    }

    #[test]
    fn mesh_zero_load_latency_matches_formula() {
        // 1 hop: 8 cycles; 2 hops: 12; 6 hops: 28 (= 4H + 4).
        for (src, dst, hops) in [(9u16, 10u16, 1u64), (0, 2, 2), (0, 15, 6)] {
            let (mut net, flow) = one_flow_net(src, dst);
            net.offer(packet(flow, src, dst, 0, 8));
            for _ in 0..200 {
                net.step();
            }
            let s = net.stats().flow(flow).expect("packet delivered");
            assert_eq!(s.packets, 1);
            assert_eq!(s.avg_head_latency(), (4 * hops + 4) as f64, "{src}->{dst}");
            // Tail trails the head by 7 flit cycles at zero load.
            assert_eq!(s.avg_packet_latency(), (4 * hops + 4 + 7) as f64);
            assert!(net.is_quiescent());
        }
    }

    #[test]
    fn zero_load_matches_plan_prediction() {
        let (net, flow) = one_flow_net(3, 12);
        let plan = net.flows().plan(flow);
        let (mut net2, _) = one_flow_net(3, 12);
        net2.offer(packet(flow, 3, 12, 0, 8));
        for _ in 0..200 {
            net2.step();
        }
        assert_eq!(
            net2.stats()
                .flow(flow)
                .expect("delivered")
                .avg_head_latency(),
            plan.zero_load_latency() as f64
        );
    }

    #[test]
    fn back_to_back_packets_share_the_network() {
        let (mut net, flow) = one_flow_net(0, 3);
        let mut traffic = ScriptedTraffic::new(
            vec![(0, flow), (1, flow), (2, flow)],
            8,
            net.flows(),
            net.topology(),
        );
        net.run_with(&mut traffic, 300);
        assert_eq!(net.counters().packets_delivered, 3);
        assert_eq!(net.counters().packets_injected, 3);
        assert!(net.is_quiescent());
        // Later packets waited (VC reuse + switch hold) but all arrived.
        let s = net.stats().flow(flow).expect("delivered");
        assert_eq!(s.packets, 3);
        assert!(s.head_latency_max >= s.head_latency_min);
    }

    #[test]
    fn flit_conservation_under_load() {
        let (mut net, flow) = one_flow_net(0, 5);
        for i in 0..20 {
            net.offer(packet(flow, 0, 5, i, 8));
        }
        for _ in 0..2000 {
            net.step();
        }
        assert_eq!(net.counters().packets_injected, 20);
        assert_eq!(net.counters().packets_delivered, 20);
        assert_eq!(net.counters().flits_delivered, 160);
        assert!(net.is_quiescent());
        assert_eq!(net.counters().packets_in_flight(), 0);
    }

    #[test]
    fn drain_detects_quiescence() {
        let (mut net, flow) = one_flow_net(1, 14);
        assert!(net.is_quiescent());
        net.offer(packet(flow, 1, 14, 0, 8));
        assert!(!net.is_quiescent());
        assert!(net.drain(500));
        assert!(net.is_quiescent());
    }

    #[test]
    fn counters_track_buffer_and_crossbar_activity() {
        let (mut net, flow) = one_flow_net(0, 2); // 2 hops
        net.offer(packet(flow, 0, 2, 0, 8));
        net.drain(500);
        let c = net.counters();
        // 8 flits × 3 stops (routers 0, 1, 2) buffered once each.
        assert_eq!(c.buffer_writes, 24);
        assert_eq!(c.buffer_reads, 24);
        // Crossbars: 2 link legs (1 each) + ejection (1) per flit.
        assert_eq!(c.xbar_flit_traversals, 24);
        // Pipeline registers: one per flit per separate-LT leg.
        assert_eq!(c.pipeline_reg_writes, 16);
        // Link mm: 2 mm per flit.
        assert!((c.link_flit_mm - 16.0).abs() < 1e-9);
        // Credits: 3 VC frees (2 router stops + NIC), each crossing back.
        assert!(c.xbar_credit_traversals > 0);
    }

    #[test]
    fn stats_window_excludes_warmup_packets() {
        let (mut net, flow) = one_flow_net(0, 1);
        net.set_stats_from(100);
        net.offer(packet(flow, 0, 1, 0, 8)); // warm-up packet
        net.drain(200);
        assert_eq!(net.stats().packets(), 0);
        // Advance past the measurement boundary before the late packet.
        while net.cycle() < 100 {
            net.step();
        }
        let late = packet(flow, 0, 1, net.cycle(), 8);
        net.offer(late);
        net.drain(200);
        assert_eq!(net.stats().packets(), 1);
    }
}
