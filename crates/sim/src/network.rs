//! The synchronous network engine.
//!
//! Drives routers and NICs through a deterministic per-cycle schedule:
//!
//! 1. apply credit returns scheduled for this cycle;
//! 2. apply flit arrivals (buffer writes / NIC deliveries);
//! 3. NIC injection (one flit per NIC per cycle);
//! 4. switch allocation at every router; granted flits traverse their
//!    leg (`ST+LT`) and are scheduled to arrive at its end;
//! 5. accounting (clock gating, cycle counters).
//!
//! The engine enforces the SMART preset invariant at runtime: **no two
//! flits may cross the same link in the same cycle** — if a preset
//! compiler produced plans that violate single-cycle exclusivity, the
//! engine panics rather than silently time-multiplexing the wire.

use crate::counters::ActivityCounters;
use crate::flit::{Flit, Packet, VcId};
use crate::forward::{Endpoint, FlowTable, Segment, Sender};
use crate::nic::{Nic, RxEvent};
use crate::router::Router;
use crate::stats::SimStats;
use crate::topology::{LinkId, Mesh, NodeId};
use crate::trace::{TraceKind, TraceRecord, Tracer};
use crate::traffic::TrafficSource;
use std::collections::HashMap;

/// Sizing parameters shared by all designs (Table II defaults via
/// [`SimConfig::paper_4x4`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Mesh dimensions.
    pub mesh: Mesh,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Flits of buffering per VC.
    pub vc_depth: usize,
    /// Flits per packet (packet size / flit size).
    pub flits_per_packet: u8,
}

impl SimConfig {
    /// Table II: 4×4 mesh, 2 VCs × 10 flits, 256-bit packets of 32-bit
    /// flits.
    #[must_use]
    pub fn paper_4x4() -> Self {
        SimConfig {
            mesh: Mesh::paper_4x4(),
            vcs_per_port: 2,
            vc_depth: 10,
            flits_per_packet: 8,
        }
    }

    /// Validate invariants (virtual cut-through needs whole packets to
    /// fit in one VC).
    ///
    /// # Panics
    ///
    /// Panics if a packet cannot fit in a VC buffer.
    pub fn validate(&self) {
        assert!(
            usize::from(self.flits_per_packet) <= self.vc_depth,
            "virtual cut-through requires vc_depth >= flits_per_packet"
        );
        assert!(self.vcs_per_port > 0 && self.flits_per_packet > 0);
    }
}

/// Ring-buffer depth for scheduled events (max lookahead is 4 cycles).
const RING: usize = 16;

/// The simulated network: routers + NICs + in-flight events.
#[derive(Debug)]
pub struct Network {
    cfg: SimConfig,
    flows: FlowTable,
    routers: Vec<Router>,
    nics: Vec<Nic>,
    /// endpoint → the unique sender whose free-VC queue tracks it.
    endpoint_sender: HashMap<Endpoint, Sender>,
    /// endpoint → (crossbars, mm) of its incoming leg, for credit
    /// activity accounting on the reverse path.
    endpoint_leg_cost: HashMap<Endpoint, (u32, f64)>,
    arrivals: Vec<Vec<(Endpoint, Flit)>>,
    credit_ring: Vec<Vec<(Sender, VcId)>>,
    cycle: u64,
    counters: ActivityCounters,
    stats: SimStats,
    stats_from: u64,
    /// Last ST cycle each link carried a flit (single-cycle exclusivity).
    link_guard: HashMap<LinkId, u64>,
    /// Flits carried per link since the last counter reset.
    link_flits: HashMap<LinkId, u64>,
    enabled_ports: u64,
    total_ports: u64,
    tracer: Option<Tracer>,
}

impl Network {
    /// Build a network for `flows` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or the flow plans are inconsistent
    /// (see [`FlowTable::sender_endpoints`]).
    #[must_use]
    pub fn new(cfg: SimConfig, flows: FlowTable) -> Self {
        cfg.validate();
        let n = cfg.mesh.len();
        let mut routers: Vec<Router> = cfg
            .mesh
            .nodes()
            .map(|id| Router::new(id, cfg.vcs_per_port, cfg.vc_depth))
            .collect();
        let nics: Vec<Nic> = cfg
            .mesh
            .nodes()
            .map(|id| Nic::new(id, cfg.vcs_per_port))
            .collect();

        // Preset-driven port enables + endpoint bookkeeping.
        let mut endpoint_leg_cost = HashMap::new();
        for plan in flows.iter() {
            for leg in &plan.legs {
                if let Sender::RouterOutput(r, d) = leg.sender {
                    routers[r.0 as usize].enable_output(d);
                }
                for link in &leg.links {
                    routers[link.from.0 as usize].enable_output(link.dir);
                    let to = cfg
                        .mesh
                        .neighbor(link.from, link.dir)
                        .unwrap_or_else(|| panic!("{link} leaves the mesh"));
                    routers[to.0 as usize].enable_input(link.dir.opposite());
                }
                if let Endpoint::Stop { router, in_dir } = leg.end {
                    routers[router.0 as usize].enable_input(in_dir);
                }
                endpoint_leg_cost.insert(leg.end, (leg.crossbars(), leg.link_mm()));
            }
        }
        let endpoint_sender: HashMap<Endpoint, Sender> = flows
            .sender_endpoints()
            .into_iter()
            .map(|(s, e)| (e, s))
            .collect();

        let enabled_ports: u64 = routers.iter().map(|r| r.enabled_ports() as u64).sum();
        let total_ports = (n * 10) as u64; // 5 in + 5 out per router

        Network {
            cfg,
            flows,
            routers,
            nics,
            endpoint_sender,
            endpoint_leg_cost,
            arrivals: vec![Vec::new(); RING],
            credit_ring: vec![Vec::new(); RING],
            cycle: 0,
            counters: ActivityCounters::new(),
            stats: SimStats::new(),
            stats_from: 0,
            link_guard: HashMap::new(),
            link_flits: HashMap::new(),
            enabled_ports,
            total_ports,
            tracer: None,
        }
    }

    /// Record micro-architectural events (up to `capacity` of them) for
    /// journey logs, VCD dumps and counter cross-validation.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::with_capacity(capacity));
    }

    /// The tracer, if tracing is enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.cfg
    }

    /// The mesh being simulated.
    #[must_use]
    pub fn mesh(&self) -> Mesh {
        self.cfg.mesh
    }

    /// The flow table in use.
    #[must_use]
    pub fn flows(&self) -> &FlowTable {
        &self.flows
    }

    /// Current cycle (cycles fully processed).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Activity counters accumulated since the last reset.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Only packets *generated* at or after `cycle` contribute to
    /// latency statistics (warm-up exclusion).
    pub fn set_stats_from(&mut self, cycle: u64) {
        self.stats_from = cycle;
    }

    /// Zero the activity counters (e.g. at the end of warm-up).
    pub fn reset_counters(&mut self) {
        self.counters = ActivityCounters::new();
        self.link_flits.clear();
    }

    /// Flits carried per link since the last counter reset — the
    /// utilization heatmap's raw data.
    #[must_use]
    pub fn link_flit_counts(&self) -> &HashMap<LinkId, u64> {
        &self.link_flits
    }

    /// Queue a generated packet at its source NIC.
    ///
    /// # Panics
    ///
    /// Panics if the packet's flow is unknown or its src/dst disagree
    /// with the flow's route.
    pub fn offer(&mut self, packet: Packet) {
        let plan = self.flows.plan(packet.flow);
        assert_eq!(packet.src, plan.route.source(), "packet src mismatch");
        assert_eq!(
            packet.dst,
            plan.route.destination(self.cfg.mesh),
            "packet dst mismatch"
        );
        self.nics[packet.src.0 as usize].offer(packet);
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let c = self.cycle;
        let slot = (c % RING as u64) as usize;

        // 1. Credits landing this cycle.
        let credits = std::mem::take(&mut self.credit_ring[slot]);
        for (sender, vc) in credits {
            match sender {
                Sender::Nic(n) => self.nics[n.0 as usize].credit(vc),
                Sender::RouterOutput(r, d) => self.routers[r.0 as usize].credit(d, vc),
            }
        }

        // 2. Flit arrivals (scheduled for end of cycle c-1).
        let arrivals = std::mem::take(&mut self.arrivals[slot]);
        for (end, flit) in arrivals {
            match end {
                Endpoint::Stop { router, in_dir } => {
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: c.saturating_sub(1),
                            flow: flit.flow,
                            packet: flit.packet,
                            kind: TraceKind::BufferWrite { router, in_dir },
                        });
                    }
                    self.routers[router.0 as usize].receive(
                        in_dir,
                        flit,
                        c.saturating_sub(1),
                        &mut self.counters,
                    );
                }
                Endpoint::Nic { node } => {
                    let arrival_cycle = c - 1;
                    let gen = flit.gen_cycle;
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(TraceRecord {
                            cycle: arrival_cycle,
                            flow: flit.flow,
                            packet: flit.packet,
                            kind: TraceKind::Deliver {
                                node,
                                head: flit.is_head(),
                                tail: flit.is_tail(),
                            },
                        });
                    }
                    let events = self.nics[node.0 as usize].receive(
                        &flit,
                        arrival_cycle,
                        &mut self.counters,
                    );
                    for ev in events {
                        match ev {
                            RxEvent::Head(flow, lat, srcq) => {
                                if gen >= self.stats_from {
                                    self.stats.record_head(flow, lat, srcq);
                                }
                            }
                            RxEvent::Tail(flow, lat, vc) => {
                                if gen >= self.stats_from {
                                    self.stats.record_tail(flow, lat);
                                }
                                // Credit for the freed NIC reception VC.
                                self.emit_credit(Endpoint::Nic { node }, vc, c + 1);
                            }
                        }
                    }
                }
            }
        }

        // 3. NIC injection.
        for i in 0..self.nics.len() {
            let Some(flit) = self.nics[i].try_inject(c, &mut self.counters) else {
                continue;
            };
            let leg = self.flows.plan(flit.flow).legs[0].clone();
            debug_assert!(matches!(leg.sender, Sender::Nic(n) if n.0 as usize == i));
            self.launch(flit, &leg, c);
        }

        // 4. Switch allocation; ST happens during c + 1.
        for r in 0..self.routers.len() {
            let (departures, releases) =
                self.routers[r].allocate(c, &self.flows, &mut self.counters);
            let node = NodeId(r as u16);
            for dep in departures {
                let leg = self.flows.leg_from(dep.flit.flow, node).clone();
                assert_eq!(leg.out_dir, dep.out_dir, "plan/grant mismatch at {node}");
                self.launch(dep.flit, &leg, c + 1);
            }
            for rel in releases {
                let end = Endpoint::Stop {
                    router: node,
                    in_dir: rel.in_dir,
                };
                // Tail departs the buffer during c+1; the credit crosses
                // the reverse mesh during c+2 and is usable at c+3.
                self.emit_credit(end, rel.vc, c + 3);
            }
        }

        // 5. Gating + cycle accounting.
        self.counters.active_port_cycles += self.enabled_ports;
        self.counters.gated_port_cycles += self.total_ports - self.enabled_ports;
        self.counters.cycles += 1;
        self.cycle += 1;
    }

    /// Launch `flit` onto `leg`, with ST (and the whole link traversal)
    /// occurring during `st_cycle`.
    fn launch(&mut self, flit: Flit, leg: &Segment, st_cycle: u64) {
        // Single-cycle link exclusivity (the preset invariant).
        for link in &leg.links {
            let prev = self.link_guard.insert(*link, st_cycle);
            assert!(
                prev != Some(st_cycle),
                "two flits on {link} in cycle {st_cycle}: preset violation"
            );
            *self.link_flits.entry(*link).or_insert(0) += 1;
        }
        self.counters.xbar_flit_traversals += u64::from(leg.crossbars());
        self.counters.link_flit_mm += leg.link_mm();
        if leg.cycles == 2 {
            self.counters.pipeline_reg_writes += 1;
        }
        if let Some(t) = self.tracer.as_mut() {
            let from = match leg.sender {
                Sender::Nic(n) | Sender::RouterOutput(n, _) => n,
            };
            t.record(TraceRecord {
                cycle: st_cycle,
                flow: flit.flow,
                packet: flit.packet,
                kind: TraceKind::Launch {
                    from,
                    links: leg.links.len() as u8,
                    crossbars: leg.crossbars() as u8,
                    mm: leg.link_mm(),
                },
            });
        }
        let arrival = st_cycle + u64::from(leg.cycles) - 1;
        let slot = ((arrival + 1) % RING as u64) as usize;
        self.arrivals[slot].push((leg.end, flit));
    }

    /// Schedule the credit for a freed VC at `end` back to its sender,
    /// usable at `apply_cycle`.
    fn emit_credit(&mut self, end: Endpoint, vc: VcId, apply_cycle: u64) {
        let sender = *self
            .endpoint_sender
            .get(&end)
            .unwrap_or_else(|| panic!("no sender tracks endpoint {end:?}"));
        let (xbars, mm) = self.endpoint_leg_cost[&end];
        self.counters.xbar_credit_traversals += u64::from(xbars);
        self.counters.link_credit_mm += mm;
        if let Some(t) = self.tracer.as_mut() {
            t.record(TraceRecord {
                cycle: apply_cycle.saturating_sub(2),
                flow: crate::flit::FlowId(u32::MAX),
                packet: crate::flit::PacketId(u64::MAX),
                kind: TraceKind::Credit {
                    crossbars: xbars as u8,
                    mm,
                },
            });
        }
        let slot = (apply_cycle % RING as u64) as usize;
        self.credit_ring[slot].push((sender, vc));
    }

    /// Run `cycles` cycles, pulling packets from `traffic` each cycle.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        for _ in 0..cycles {
            for p in traffic.generate(self.cycle) {
                self.offer(p);
            }
            self.step();
        }
    }

    /// `true` when no packet is queued, buffered, or in flight anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.nics.iter().all(Nic::is_drained)
            && self.routers.iter().all(Router::is_drained)
            && self.arrivals.iter().all(Vec::is_empty)
    }

    /// Step until quiescent, up to `max_cycles`. Returns `true` if the
    /// network drained (the precondition for reconfiguration, Section V).
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// Injection backlog across all NICs.
    #[must_use]
    pub fn total_backlog(&self) -> usize {
        self.nics.iter().map(Nic::backlog).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlowId, PacketId};
    use crate::route::SourceRoute;
    use crate::traffic::ScriptedTraffic;

    fn one_flow_net(src: u16, dst: u16) -> (Network, FlowId) {
        let cfg = SimConfig::paper_4x4();
        let flow = FlowId(0);
        let route = SourceRoute::xy(cfg.mesh, NodeId(src), NodeId(dst));
        let table = FlowTable::mesh_baseline(cfg.mesh, &[(flow, route)]);
        (Network::new(cfg, table), flow)
    }

    fn packet(flow: FlowId, src: u16, dst: u16, gen: u64, n: u8) -> Packet {
        Packet {
            id: PacketId(gen),
            flow,
            src: NodeId(src),
            dst: NodeId(dst),
            gen_cycle: gen,
            num_flits: n,
        }
    }

    #[test]
    fn mesh_zero_load_latency_matches_formula() {
        // 1 hop: 8 cycles; 2 hops: 12; 6 hops: 28 (= 4H + 4).
        for (src, dst, hops) in [(9u16, 10u16, 1u64), (0, 2, 2), (0, 15, 6)] {
            let (mut net, flow) = one_flow_net(src, dst);
            net.offer(packet(flow, src, dst, 0, 8));
            for _ in 0..200 {
                net.step();
            }
            let s = net.stats().flow(flow).expect("packet delivered");
            assert_eq!(s.packets, 1);
            assert_eq!(s.avg_head_latency(), (4 * hops + 4) as f64, "{src}->{dst}");
            // Tail trails the head by 7 flit cycles at zero load.
            assert_eq!(s.avg_packet_latency(), (4 * hops + 4 + 7) as f64);
            assert!(net.is_quiescent());
        }
    }

    #[test]
    fn zero_load_matches_plan_prediction() {
        let (net, flow) = one_flow_net(3, 12);
        let plan = net.flows().plan(flow);
        let (mut net2, _) = one_flow_net(3, 12);
        net2.offer(packet(flow, 3, 12, 0, 8));
        for _ in 0..200 {
            net2.step();
        }
        assert_eq!(
            net2.stats()
                .flow(flow)
                .expect("delivered")
                .avg_head_latency(),
            plan.zero_load_latency() as f64
        );
    }

    #[test]
    fn back_to_back_packets_share_the_network() {
        let (mut net, flow) = one_flow_net(0, 3);
        let mut traffic = ScriptedTraffic::new(
            vec![(0, flow), (1, flow), (2, flow)],
            8,
            net.flows(),
            net.mesh(),
        );
        net.run_with(&mut traffic, 300);
        assert_eq!(net.counters().packets_delivered, 3);
        assert_eq!(net.counters().packets_injected, 3);
        assert!(net.is_quiescent());
        // Later packets waited (VC reuse + switch hold) but all arrived.
        let s = net.stats().flow(flow).expect("delivered");
        assert_eq!(s.packets, 3);
        assert!(s.head_latency_max >= s.head_latency_min);
    }

    #[test]
    fn flit_conservation_under_load() {
        let (mut net, flow) = one_flow_net(0, 5);
        for i in 0..20 {
            net.offer(packet(flow, 0, 5, i, 8));
        }
        for _ in 0..2000 {
            net.step();
        }
        assert_eq!(net.counters().packets_injected, 20);
        assert_eq!(net.counters().packets_delivered, 20);
        assert_eq!(net.counters().flits_delivered, 160);
        assert!(net.is_quiescent());
        assert_eq!(net.counters().packets_in_flight(), 0);
    }

    #[test]
    fn drain_detects_quiescence() {
        let (mut net, flow) = one_flow_net(1, 14);
        assert!(net.is_quiescent());
        net.offer(packet(flow, 1, 14, 0, 8));
        assert!(!net.is_quiescent());
        assert!(net.drain(500));
        assert!(net.is_quiescent());
    }

    #[test]
    fn counters_track_buffer_and_crossbar_activity() {
        let (mut net, flow) = one_flow_net(0, 2); // 2 hops
        net.offer(packet(flow, 0, 2, 0, 8));
        net.drain(500);
        let c = net.counters();
        // 8 flits × 3 stops (routers 0, 1, 2) buffered once each.
        assert_eq!(c.buffer_writes, 24);
        assert_eq!(c.buffer_reads, 24);
        // Crossbars: 2 link legs (1 each) + ejection (1) per flit.
        assert_eq!(c.xbar_flit_traversals, 24);
        // Pipeline registers: one per flit per separate-LT leg.
        assert_eq!(c.pipeline_reg_writes, 16);
        // Link mm: 2 mm per flit.
        assert!((c.link_flit_mm - 16.0).abs() < 1e-9);
        // Credits: 3 VC frees (2 router stops + NIC), each crossing back.
        assert!(c.xbar_credit_traversals > 0);
    }

    #[test]
    fn stats_window_excludes_warmup_packets() {
        let (mut net, flow) = one_flow_net(0, 1);
        net.set_stats_from(100);
        net.offer(packet(flow, 0, 1, 0, 8)); // warm-up packet
        net.drain(200);
        assert_eq!(net.stats().packets(), 0);
        // Advance past the measurement boundary before the late packet.
        while net.cycle() < 100 {
            net.step();
        }
        let late = packet(flow, 0, 1, net.cycle(), 8);
        net.offer(late);
        net.drain(200);
        assert_eq!(net.stats().packets(), 1);
    }
}
