//! Traffic generation.
//!
//! The paper's evaluation "generate\[s\] synthetic traffic from 8 SoC task
//! graphs, modeling a uniform random injection rate to meet the
//! specified bandwidth for each flow". [`BernoulliTraffic`] implements
//! exactly that: per flow, a packet is generated each cycle with
//! probability chosen so the average flit rate matches the flow's
//! bandwidth. [`ScriptedTraffic`] injects packets at fixed cycles for
//! deterministic tests and the Fig 7 walk-through.

use crate::flit::{FlowId, Packet, PacketId};
use crate::forward::FlowTable;
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Produces packets for each simulated cycle.
pub trait TrafficSource {
    /// Packets generated at (the start of) `cycle`.
    fn generate(&mut self, cycle: u64) -> Vec<Packet>;
}

/// Per-flow uniform-random (Bernoulli) injection.
#[derive(Debug, Clone)]
pub struct BernoulliTraffic {
    flows: Vec<(FlowId, NodeId, NodeId, f64)>,
    flits_per_packet: u8,
    rng: StdRng,
    next_id: u64,
}

impl BernoulliTraffic {
    /// Build from `(flow, packets_per_cycle)` rates; sources and
    /// destinations are read from the flow table's routes.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or any flow is unknown.
    #[must_use]
    pub fn new(
        rates: &[(FlowId, f64)],
        flows: &FlowTable,
        topo: impl Into<Topology>,
        flits_per_packet: u8,
        seed: u64,
    ) -> Self {
        let topo = topo.into();
        let specs = rates
            .iter()
            .map(|(flow, rate)| {
                assert!(
                    (0.0..=1.0).contains(rate),
                    "{flow}: injection rate {rate} outside [0,1]"
                );
                let plan = flows.plan(*flow);
                (
                    *flow,
                    plan.route.source(),
                    plan.route.destination(topo),
                    *rate,
                )
            })
            .collect();
        BernoulliTraffic {
            flows: specs,
            flits_per_packet,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Generate `per_flow` packets for every flow immediately (e.g. to
    /// leave traffic in flight before a reconfiguration drain).
    #[must_use]
    pub fn generate_burst(&mut self, cycle: u64, per_flow: usize) -> Vec<Packet> {
        let mut out = Vec::new();
        for (flow, src, dst, _) in &self.flows {
            for _ in 0..per_flow {
                out.push(Packet {
                    id: PacketId(self.next_id),
                    flow: *flow,
                    src: *src,
                    dst: *dst,
                    gen_cycle: cycle,
                    num_flits: self.flits_per_packet,
                });
                self.next_id += 1;
            }
        }
        out
    }

    /// Aggregate offered load in flits per cycle across all flows.
    #[must_use]
    pub fn offered_flits_per_cycle(&self) -> f64 {
        self.flows
            .iter()
            .map(|(_, _, _, r)| r * f64::from(self.flits_per_packet))
            .sum()
    }
}

impl TrafficSource for BernoulliTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        for (flow, src, dst, rate) in &self.flows {
            if self.rng.gen::<f64>() < *rate {
                out.push(Packet {
                    id: PacketId(self.next_id),
                    flow: *flow,
                    src: *src,
                    dst: *dst,
                    gen_cycle: cycle,
                    num_flits: self.flits_per_packet,
                });
                self.next_id += 1;
            }
        }
        out
    }
}

/// Deterministic traffic: one packet per `(cycle, flow)` event.
#[derive(Debug, Clone)]
pub struct ScriptedTraffic {
    /// Events sorted by cycle.
    events: Vec<(u64, FlowId)>,
    idx: usize,
    flits_per_packet: u8,
    endpoints: HashMap<FlowId, (NodeId, NodeId)>,
    next_id: u64,
}

impl ScriptedTraffic {
    /// Build from `(cycle, flow)` events. Events are sorted by cycle;
    /// same-cycle events keep the order they were given in (so a
    /// recorded injection schedule replays in its original per-cycle
    /// order — queue order at a shared source NIC matters).
    ///
    /// # Panics
    ///
    /// Panics if an event references an unknown flow.
    #[must_use]
    pub fn new(
        mut events: Vec<(u64, FlowId)>,
        flits_per_packet: u8,
        flows: &FlowTable,
        topo: impl Into<Topology>,
    ) -> Self {
        let topo = topo.into();
        events.sort_by_key(|(c, _)| *c);
        let endpoints = events
            .iter()
            .map(|(_, f)| {
                let plan = flows.plan(*f);
                (*f, (plan.route.source(), plan.route.destination(topo)))
            })
            .collect();
        ScriptedTraffic {
            events,
            idx: 0,
            flits_per_packet,
            endpoints,
            next_id: 0,
        }
    }

    /// `true` once every scripted event has fired.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.idx >= self.events.len()
    }
}

impl TrafficSource for ScriptedTraffic {
    fn generate(&mut self, cycle: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        while self.idx < self.events.len() && self.events[self.idx].0 <= cycle {
            let (gen, flow) = self.events[self.idx];
            let (src, dst) = self.endpoints[&flow];
            out.push(Packet {
                id: PacketId(self.next_id),
                flow,
                src,
                dst,
                gen_cycle: gen,
                num_flits: self.flits_per_packet,
            });
            self.next_id += 1;
            self.idx += 1;
        }
        out
    }
}

/// Convert a bandwidth in MB/s into packets per cycle for a NoC with
/// `flit_bytes`-byte flits, `flits_per_packet`-flit packets, clocked at
/// `clock_ghz` — the conversion behind the paper's "uniform random
/// injection rate to meet the specified bandwidth for each flow".
#[must_use]
pub fn mbps_to_packet_rate(
    bandwidth_mbs: f64,
    flit_bytes: u32,
    flits_per_packet: u8,
    clock_ghz: f64,
) -> f64 {
    let bytes_per_cycle = bandwidth_mbs * 1e6 / (clock_ghz * 1e9);
    bytes_per_cycle / f64::from(flit_bytes * u32::from(flits_per_packet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::SourceRoute;
    use crate::topology::Mesh;

    fn table() -> (FlowTable, Mesh) {
        let mesh = Mesh::paper_4x4();
        let routes = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh, NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh, NodeId(12), NodeId(15)).unwrap(),
            ),
        ];
        (FlowTable::mesh_baseline(mesh, &routes), mesh)
    }

    #[test]
    fn bernoulli_rate_is_approximately_met() {
        let (flows, mesh) = table();
        let mut t = BernoulliTraffic::new(&[(FlowId(0), 0.1)], &flows, mesh, 8, 42);
        let mut count = 0;
        for c in 0..20_000 {
            count += t.generate(c).len();
        }
        let rate = count as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "measured {rate}, expected ~0.1");
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let (flows, mesh) = table();
        let mut a = BernoulliTraffic::new(&[(FlowId(0), 0.3)], &flows, mesh, 8, 7);
        let mut b = BernoulliTraffic::new(&[(FlowId(0), 0.3)], &flows, mesh, 8, 7);
        for c in 0..100 {
            assert_eq!(a.generate(c).len(), b.generate(c).len());
        }
    }

    #[test]
    fn scripted_fires_in_order() {
        let (flows, mesh) = table();
        let mut t = ScriptedTraffic::new(
            vec![(5, FlowId(1)), (2, FlowId(0)), (5, FlowId(0))],
            8,
            &flows,
            mesh,
        );
        assert!(t.generate(0).is_empty());
        let at2 = t.generate(2);
        assert_eq!(at2.len(), 1);
        assert_eq!(at2[0].flow, FlowId(0));
        assert_eq!(at2[0].src, NodeId(0));
        let at5 = t.generate(5);
        assert_eq!(at5.len(), 2);
        assert!(t.exhausted());
    }

    #[test]
    fn same_cycle_events_keep_their_given_order() {
        // Queue order at a shared source NIC matters, so replaying a
        // recorded schedule must not reorder same-cycle events.
        let (flows, mesh) = table();
        let mut t = ScriptedTraffic::new(
            vec![(3, FlowId(1)), (3, FlowId(0)), (1, FlowId(0))],
            8,
            &flows,
            mesh,
        );
        assert_eq!(t.generate(1).len(), 1);
        let at3: Vec<FlowId> = t.generate(3).iter().map(|p| p.flow).collect();
        assert_eq!(at3, vec![FlowId(1), FlowId(0)]);
    }

    #[test]
    fn burst_covers_every_flow() {
        let (flows, mesh) = table();
        let mut t =
            BernoulliTraffic::new(&[(FlowId(0), 0.1), (FlowId(1), 0.1)], &flows, mesh, 8, 0);
        let burst = t.generate_burst(42, 3);
        assert_eq!(burst.len(), 6);
        assert!(burst.iter().all(|p| p.gen_cycle == 42));
        assert_eq!(burst.iter().filter(|p| p.flow == FlowId(0)).count(), 3);
    }

    #[test]
    fn offered_load_sums_flows() {
        let (flows, mesh) = table();
        let t = BernoulliTraffic::new(&[(FlowId(0), 0.05), (FlowId(1), 0.1)], &flows, mesh, 8, 0);
        assert!((t.offered_flits_per_cycle() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_conversion_matches_hand_calculation() {
        // 500 MB/s on a 2 GHz NoC with 4-byte flits, 8-flit packets:
        // 500e6/2e9 = 0.25 B/cycle; /32 B per packet = 1/128 packets/cycle.
        let r = mbps_to_packet_rate(500.0, 4, 8, 2.0);
        assert!((r - 1.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn silly_rate_rejected() {
        let (flows, mesh) = table();
        let _ = BernoulliTraffic::new(&[(FlowId(0), 1.5)], &flows, mesh, 8, 0);
    }
}
