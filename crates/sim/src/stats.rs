//! Latency and throughput statistics.
//!
//! The paper's Fig 10a reports **average network latency** per
//! application: the cycles a head flit spends from entering the network
//! at the source NIC to arriving at the destination NIC. Time spent
//! queueing in the source NIC before injection is tracked separately
//! (`source_queue`), as is full-packet (tail) latency.

use crate::flit::FlowId;
use std::collections::BTreeMap;

/// Accumulated latency samples for one flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets whose head reached the destination.
    pub packets: u64,
    /// Sum of head-flit network latencies (cycles).
    pub head_latency_sum: u64,
    /// Sum of packet (tail) network latencies.
    pub packet_latency_sum: u64,
    /// Sum of source-queueing delays (generation → injection).
    pub source_queue_sum: u64,
    /// Largest head latency observed.
    pub head_latency_max: u64,
    /// Smallest head latency observed.
    pub head_latency_min: u64,
}

impl FlowStats {
    /// Mean head-flit network latency.
    #[must_use]
    pub fn avg_head_latency(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.head_latency_sum as f64 / self.packets as f64
    }

    /// Mean full-packet (tail-arrival) latency.
    #[must_use]
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.packet_latency_sum as f64 / self.packets as f64
    }

    /// Mean source-queueing delay.
    #[must_use]
    pub fn avg_source_queue(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.source_queue_sum as f64 / self.packets as f64
    }
}

/// Statistics over all flows of a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    flows: BTreeMap<FlowId, FlowStats>,
    /// Histogram of head latencies (bucket = exact cycle count, capped).
    histogram: BTreeMap<u64, u64>,
}

/// Histogram cap: latencies above this land in one overflow bucket.
const HIST_CAP: u64 = 512;

impl SimStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// The per-flow entry, created with the min-latency sentinel in
    /// place. Both record paths go through here, so a tail recorded
    /// before its head cannot create a flow whose `head_latency_min`
    /// is a spurious 0 instead of `u64::MAX`.
    fn flow_entry(&mut self, flow: FlowId) -> &mut FlowStats {
        self.flows.entry(flow).or_insert(FlowStats {
            head_latency_min: u64::MAX,
            ..FlowStats::default()
        })
    }

    /// Record a delivered packet's head latency; call once per packet.
    pub fn record_head(&mut self, flow: FlowId, head_latency: u64, source_queue: u64) {
        let f = self.flow_entry(flow);
        f.packets += 1;
        f.head_latency_sum += head_latency;
        f.source_queue_sum += source_queue;
        f.head_latency_max = f.head_latency_max.max(head_latency);
        f.head_latency_min = f.head_latency_min.min(head_latency);
        *self
            .histogram
            .entry(head_latency.min(HIST_CAP))
            .or_insert(0) += 1;
    }

    /// Record the same packet's tail arrival (packet latency).
    pub fn record_tail(&mut self, flow: FlowId, packet_latency: u64) {
        let f = self.flow_entry(flow);
        f.packet_latency_sum += packet_latency;
    }

    /// Fold another statistics object into this one. Sums and packet
    /// counts add, extrema combine, histogram buckets add — so merging
    /// per-shard statistics yields exactly what a single serial run
    /// would have recorded (all accumulators are order-independent).
    pub fn merge(&mut self, other: &SimStats) {
        for (flow, theirs) in &other.flows {
            let ours = self.flow_entry(*flow);
            ours.packets += theirs.packets;
            ours.head_latency_sum += theirs.head_latency_sum;
            ours.packet_latency_sum += theirs.packet_latency_sum;
            ours.source_queue_sum += theirs.source_queue_sum;
            ours.head_latency_max = ours.head_latency_max.max(theirs.head_latency_max);
            ours.head_latency_min = ours.head_latency_min.min(theirs.head_latency_min);
        }
        for (bucket, n) in &other.histogram {
            *self.histogram.entry(*bucket).or_insert(0) += n;
        }
    }

    /// Per-flow statistics, ordered by flow id.
    #[must_use]
    pub fn flows(&self) -> &BTreeMap<FlowId, FlowStats> {
        &self.flows
    }

    /// Stats for one flow, if any packets arrived.
    #[must_use]
    pub fn flow(&self, flow: FlowId) -> Option<&FlowStats> {
        self.flows.get(&flow)
    }

    /// Total packets delivered.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.flows.values().map(|f| f.packets).sum()
    }

    /// Packet-weighted average head-flit network latency — the Fig 10a
    /// metric.
    #[must_use]
    pub fn avg_network_latency(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.head_latency_sum).sum();
        sum as f64 / n as f64
    }

    /// Packet-weighted average full-packet latency.
    #[must_use]
    pub fn avg_packet_latency(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.packet_latency_sum).sum();
        sum as f64 / n as f64
    }

    /// Packet-weighted average source-queueing delay.
    #[must_use]
    pub fn avg_source_queue(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.source_queue_sum).sum();
        sum as f64 / n as f64
    }

    /// Largest head latency observed across all flows, if any packet
    /// arrived. Exact even when the histogram has clamped samples into
    /// its overflow bucket.
    #[must_use]
    pub fn head_latency_max(&self) -> Option<u64> {
        self.flows
            .values()
            .filter(|f| f.packets > 0)
            .map(|f| f.head_latency_max)
            .max()
    }

    /// `p`-quantile (0..=1) of the head-latency distribution. Buckets
    /// below the histogram cap are exact cycle counts. The overflow
    /// bucket stands for "cap or more": interior positions report the
    /// cap itself (a known lower bound), while the distribution's
    /// final position — `p` high enough to select the last sample —
    /// resolves to the tracked true maximum instead of under-reporting
    /// the cap.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn head_latency_quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        let total: u64 = self.histogram.values().sum();
        if total == 0 {
            return None;
        }
        let target = (p * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (lat, n) in &self.histogram {
            seen += n;
            if seen >= target {
                if *lat < HIST_CAP {
                    return Some(*lat);
                }
                // Overflow bucket: only its last position is known
                // exactly — it is the tracked maximum.
                return Some(if target == total {
                    self.head_latency_max().unwrap_or(*lat)
                } else {
                    *lat
                });
            }
        }
        // `target <= total`, so the loop always returns; this covers a
        // hypothetical beyond-the-last-sample request.
        self.head_latency_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_weight_by_packet() {
        let mut s = SimStats::new();
        s.record_head(FlowId(0), 10, 0);
        s.record_head(FlowId(0), 20, 2);
        s.record_head(FlowId(1), 1, 0);
        assert_eq!(s.packets(), 3);
        assert!((s.avg_network_latency() - 31.0 / 3.0).abs() < 1e-12);
        let f0 = s.flow(FlowId(0)).expect("flow 0 recorded");
        assert!((f0.avg_head_latency() - 15.0).abs() < 1e-12);
        assert_eq!(f0.head_latency_min, 10);
        assert_eq!(f0.head_latency_max, 20);
        assert!((s.avg_source_queue() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tail_latency_tracked_separately() {
        let mut s = SimStats::new();
        s.record_head(FlowId(0), 8, 0);
        s.record_tail(FlowId(0), 15);
        assert!((s.avg_packet_latency() - 15.0).abs() < 1e-12);
        assert!((s.avg_network_latency() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut s = SimStats::new();
        for lat in [1, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            s.record_head(FlowId(0), lat, 0);
        }
        assert_eq!(s.head_latency_quantile(0.5), Some(1));
        assert_eq!(s.head_latency_quantile(1.0), Some(100));
        assert_eq!(SimStats::new().head_latency_quantile(0.5), None);
    }

    #[test]
    fn tail_before_head_keeps_the_min_sentinel() {
        let mut s = SimStats::new();
        s.record_tail(FlowId(0), 12);
        s.record_head(FlowId(0), 9, 0);
        let f = s.flow(FlowId(0)).expect("flow recorded");
        assert_eq!(
            f.head_latency_min, 9,
            "tail-first must not clamp the min to 0"
        );
        assert_eq!(f.head_latency_max, 9);
        assert_eq!(f.packet_latency_sum, 12);
        // A flow that only ever saw a tail keeps the sentinel.
        s.record_tail(FlowId(1), 5);
        let g = s.flow(FlowId(1)).expect("flow recorded");
        assert_eq!(g.packets, 0);
        assert_eq!(g.head_latency_min, u64::MAX);
        assert!(g.avg_head_latency().is_nan());
    }

    #[test]
    fn quantile_above_the_histogram_cap_reports_the_true_max() {
        let mut s = SimStats::new();
        s.record_head(FlowId(0), 3, 0);
        s.record_head(FlowId(0), 700, 0);
        s.record_head(FlowId(0), 1234, 0);
        assert_eq!(s.head_latency_quantile(0.0), Some(3));
        assert_eq!(s.head_latency_quantile(1.0), Some(1234), "not the 512 cap");
        assert_eq!(s.head_latency_max(), Some(1234));
        // Every sample above the cap: interior quantiles keep the cap
        // as a lower bound (over-reporting the max would be worse);
        // only the final position resolves to the tracked max.
        let mut t = SimStats::new();
        t.record_head(FlowId(0), 600, 0);
        t.record_head(FlowId(0), 900, 0);
        assert_eq!(t.head_latency_quantile(0.5), Some(512));
        assert_eq!(t.head_latency_quantile(1.0), Some(900));
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = SimStats::new();
        assert!(s.avg_network_latency().is_nan());
        assert!(s.avg_packet_latency().is_nan());
        assert_eq!(s.packets(), 0);
    }
}
