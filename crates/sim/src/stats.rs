//! Latency and throughput statistics.
//!
//! The paper's Fig 10a reports **average network latency** per
//! application: the cycles a head flit spends from entering the network
//! at the source NIC to arriving at the destination NIC. Time spent
//! queueing in the source NIC before injection is tracked separately
//! (`source_queue`), as is full-packet (tail) latency.

use crate::flit::FlowId;
use std::collections::BTreeMap;

/// Accumulated latency samples for one flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets whose head reached the destination.
    pub packets: u64,
    /// Sum of head-flit network latencies (cycles).
    pub head_latency_sum: u64,
    /// Sum of packet (tail) network latencies.
    pub packet_latency_sum: u64,
    /// Sum of source-queueing delays (generation → injection).
    pub source_queue_sum: u64,
    /// Largest head latency observed.
    pub head_latency_max: u64,
    /// Smallest head latency observed.
    pub head_latency_min: u64,
}

impl FlowStats {
    /// Mean head-flit network latency.
    #[must_use]
    pub fn avg_head_latency(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.head_latency_sum as f64 / self.packets as f64
    }

    /// Mean full-packet (tail-arrival) latency.
    #[must_use]
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.packet_latency_sum as f64 / self.packets as f64
    }

    /// Mean source-queueing delay.
    #[must_use]
    pub fn avg_source_queue(&self) -> f64 {
        if self.packets == 0 {
            return f64::NAN;
        }
        self.source_queue_sum as f64 / self.packets as f64
    }
}

/// Statistics over all flows of a simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    flows: BTreeMap<FlowId, FlowStats>,
    /// Histogram of head latencies (bucket = exact cycle count, capped).
    histogram: BTreeMap<u64, u64>,
}

/// Histogram cap: latencies above this land in one overflow bucket.
const HIST_CAP: u64 = 512;

impl SimStats {
    /// Empty statistics.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Record a delivered packet's head latency; call once per packet.
    pub fn record_head(&mut self, flow: FlowId, head_latency: u64, source_queue: u64) {
        let f = self.flows.entry(flow).or_insert(FlowStats {
            head_latency_min: u64::MAX,
            ..FlowStats::default()
        });
        f.packets += 1;
        f.head_latency_sum += head_latency;
        f.source_queue_sum += source_queue;
        f.head_latency_max = f.head_latency_max.max(head_latency);
        f.head_latency_min = f.head_latency_min.min(head_latency);
        *self
            .histogram
            .entry(head_latency.min(HIST_CAP))
            .or_insert(0) += 1;
    }

    /// Record the same packet's tail arrival (packet latency).
    pub fn record_tail(&mut self, flow: FlowId, packet_latency: u64) {
        let f = self.flows.entry(flow).or_default();
        f.packet_latency_sum += packet_latency;
    }

    /// Per-flow statistics, ordered by flow id.
    #[must_use]
    pub fn flows(&self) -> &BTreeMap<FlowId, FlowStats> {
        &self.flows
    }

    /// Stats for one flow, if any packets arrived.
    #[must_use]
    pub fn flow(&self, flow: FlowId) -> Option<&FlowStats> {
        self.flows.get(&flow)
    }

    /// Total packets delivered.
    #[must_use]
    pub fn packets(&self) -> u64 {
        self.flows.values().map(|f| f.packets).sum()
    }

    /// Packet-weighted average head-flit network latency — the Fig 10a
    /// metric.
    #[must_use]
    pub fn avg_network_latency(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.head_latency_sum).sum();
        sum as f64 / n as f64
    }

    /// Packet-weighted average full-packet latency.
    #[must_use]
    pub fn avg_packet_latency(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.packet_latency_sum).sum();
        sum as f64 / n as f64
    }

    /// Packet-weighted average source-queueing delay.
    #[must_use]
    pub fn avg_source_queue(&self) -> f64 {
        let n = self.packets();
        if n == 0 {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.source_queue_sum).sum();
        sum as f64 / n as f64
    }

    /// `p`-quantile (0..=1) of the head-latency distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn head_latency_quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0,1]");
        let total: u64 = self.histogram.values().sum();
        if total == 0 {
            return None;
        }
        let target = (p * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (lat, n) in &self.histogram {
            seen += n;
            if seen >= target {
                return Some(*lat);
            }
        }
        self.histogram.keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_weight_by_packet() {
        let mut s = SimStats::new();
        s.record_head(FlowId(0), 10, 0);
        s.record_head(FlowId(0), 20, 2);
        s.record_head(FlowId(1), 1, 0);
        assert_eq!(s.packets(), 3);
        assert!((s.avg_network_latency() - 31.0 / 3.0).abs() < 1e-12);
        let f0 = s.flow(FlowId(0)).expect("flow 0 recorded");
        assert!((f0.avg_head_latency() - 15.0).abs() < 1e-12);
        assert_eq!(f0.head_latency_min, 10);
        assert_eq!(f0.head_latency_max, 20);
        assert!((s.avg_source_queue() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tail_latency_tracked_separately() {
        let mut s = SimStats::new();
        s.record_head(FlowId(0), 8, 0);
        s.record_tail(FlowId(0), 15);
        assert!((s.avg_packet_latency() - 15.0).abs() < 1e-12);
        assert!((s.avg_network_latency() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut s = SimStats::new();
        for lat in [1, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            s.record_head(FlowId(0), lat, 0);
        }
        assert_eq!(s.head_latency_quantile(0.5), Some(1));
        assert_eq!(s.head_latency_quantile(1.0), Some(100));
        assert_eq!(SimStats::new().head_latency_quantile(0.5), None);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = SimStats::new();
        assert!(s.avg_network_latency().is_nan());
        assert!(s.avg_packet_latency().is_nan());
        assert_eq!(s.packets(), 0);
    }
}
