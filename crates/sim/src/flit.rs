//! Packets, flits, the packet-metadata arena, and header layout.
//!
//! Table II: 256-bit packets over 32-bit flits — an 8-flit packet whose
//! head flit carries a 20-bit header (route + VC + type) and whose body
//! and tail flits carry 4-bit headers (type + VC).
//!
//! The simulation mirrors the hardware's economy: the per-packet fields
//! (source, destination, generation/injection cycles, original
//! [`PacketId`]) are interned **once** into a [`PacketArena`] when the
//! packet enters its source NIC, and the [`Flit`] that moves through
//! queues, crossbars and links is a small fixed-size `Copy` record — an
//! arena slot plus the per-flit header (flow, sequence, VC) — instead of
//! a ~64-byte struct cloned on every hop.

use crate::route::SourceRoute;
use crate::topology::{NodeId, Topology};
use std::fmt;

/// Globally unique packet identifier (simulation-side bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PacketId(pub u64);

/// Identifies a communication flow (one task-graph edge mapped onto the
/// mesh). All packets of a flow share a static route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FlowId(pub u32);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Virtual channel index within an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VcId(pub u8);

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit: carries the route and allocates VCs.
    Head,
    /// Middle flits.
    Body,
    /// Last flit: frees the VC behind it.
    Tail,
}

/// Index of a live packet's metadata in the engine's [`PacketArena`].
///
/// Slots are recycled once the packet's tail reaches its destination
/// NIC, so the slot number is **not** a stable identity across the run —
/// the stable [`PacketId`] lives in the [`PacketMeta`] the slot points
/// at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PacketSlot(pub u32);

/// One flit in flight: the small fixed-size record moved through VC
/// queues and links every cycle. Per-packet fields live in the
/// [`PacketArena`], reached through `pkt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Arena slot of the packet this flit belongs to.
    pub pkt: PacketSlot,
    /// Flow this packet belongs to (kept inline: switch allocation
    /// resolves the output port from it every cycle).
    pub flow: FlowId,
    /// Index within the packet (0 = head).
    pub seq: u8,
    /// Total flits in the packet (a 1-flit packet's head is also its
    /// tail).
    pub num_flits: u8,
    /// VC currently allocated to this flit's packet at the router where
    /// the flit is buffered (`None` while unassigned).
    pub vc: Option<VcId>,
}

impl Flit {
    /// Flit `seq` of a packet interned at `pkt`, VC unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is outside the packet (`seq >= num_flits`) or
    /// the packet has zero flits.
    #[must_use]
    pub fn new(pkt: PacketSlot, flow: FlowId, seq: u8, num_flits: u8) -> Self {
        assert!(num_flits > 0, "a packet needs at least one flit");
        assert!(
            seq < num_flits,
            "flit {seq} outside a {num_flits}-flit packet"
        );
        Flit {
            pkt,
            flow,
            seq,
            num_flits,
            vc: None,
        }
    }

    /// `true` for the head flit.
    #[must_use]
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// `true` for the last flit of its packet — which for a single-flit
    /// packet is the head itself (it still frees the VC and releases
    /// the switch hold).
    #[must_use]
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.num_flits
    }

    /// Head / body / tail, derived from the sequence number.
    #[must_use]
    pub fn kind(&self) -> FlitKind {
        if self.is_head() {
            FlitKind::Head
        } else if self.is_tail() {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }
}

/// A whole packet, as produced by a traffic source before the NIC
/// serializes it into flits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// The flow it belongs to.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle it was generated.
    pub gen_cycle: u64,
    /// Number of flits (Table II: 8).
    pub num_flits: u8,
}

/// Interned per-packet metadata: everything the old inline flit carried
/// on every hop but that is constant for the packet's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// The packet's stable identity (traces, goldens, diagnostics).
    pub id: PacketId,
    /// The flow it belongs to.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle the packet was generated by the traffic source.
    pub gen_cycle: u64,
    /// Cycle the head entered the network (left the NIC queue); set by
    /// the NIC when transmission starts, `u64::MAX` until then.
    pub inject_cycle: u64,
    /// Total flits in the packet.
    pub num_flits: u8,
}

/// Slab of live packets' metadata with free-slot recycling.
///
/// [`Network::offer`](crate::network::Network::offer) interns each
/// generated [`Packet`] here; the slot is released when the tail flit is
/// delivered, so the arena's high-water mark tracks the number of
/// packets simultaneously in flight (queued included), not the total
/// injected — steady-state simulation performs no arena allocation.
#[derive(Debug, Clone, Default)]
pub struct PacketArena {
    slots: Vec<PacketMeta>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Intern `packet`, returning its slot.
    ///
    /// # Panics
    ///
    /// Panics if the packet has zero flits.
    pub fn intern(&mut self, packet: &Packet) -> PacketSlot {
        assert!(packet.num_flits > 0, "a packet needs at least one flit");
        let meta = PacketMeta {
            id: packet.id,
            flow: packet.flow,
            src: packet.src,
            dst: packet.dst,
            gen_cycle: packet.gen_cycle,
            inject_cycle: u64::MAX,
            num_flits: packet.num_flits,
        };
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = meta;
                PacketSlot(i)
            }
            None => {
                self.slots.push(meta);
                PacketSlot((self.slots.len() - 1) as u32)
            }
        }
    }

    /// Intern already-built metadata verbatim (including its
    /// `inject_cycle` stamp), returning its slot. This is how a packet
    /// crosses between engine shards: the receiving shard re-interns
    /// the sender's metadata so latency accounting survives the move.
    ///
    /// # Panics
    ///
    /// Panics if the metadata has zero flits.
    pub fn intern_meta(&mut self, meta: PacketMeta) -> PacketSlot {
        assert!(meta.num_flits > 0, "a packet needs at least one flit");
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = meta;
                PacketSlot(i)
            }
            None => {
                self.slots.push(meta);
                PacketSlot((self.slots.len() - 1) as u32)
            }
        }
    }

    /// The metadata at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never allocated.
    #[must_use]
    pub fn get(&self, slot: PacketSlot) -> &PacketMeta {
        &self.slots[slot.0 as usize]
    }

    /// Stamp the cycle the packet's head left its NIC queue.
    pub fn mark_injected(&mut self, slot: PacketSlot, cycle: u64) {
        self.slots[slot.0 as usize].inject_cycle = cycle;
    }

    /// Return `slot` to the free list (tail delivered).
    pub fn release(&mut self, slot: PacketSlot) {
        debug_assert!(!self.free.contains(&slot.0), "double release of {slot:?}");
        self.free.push(slot.0);
        self.live -= 1;
    }

    /// Packets currently interned (queued or in flight).
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live packets.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.slots.len()
    }
}

/// Bit-level header layout for a given topology / VC configuration,
/// reproducing Table II's 20-bit head and 4-bit body/tail headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderLayout {
    /// Route field bits (2 per router on the longest minimal route).
    pub route_bits: usize,
    /// VC id bits.
    pub vc_bits: usize,
    /// Flit type bits (head/body/tail + valid).
    pub type_bits: usize,
}

impl HeaderLayout {
    /// Layout for `topo` with `vcs` virtual channels per port. The
    /// route field is sized by the fabric's longest minimal route, so a
    /// torus (whose wrap links halve the diameter) gets a *narrower*
    /// header than the mesh of the same dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    #[must_use]
    pub fn for_config(topo: impl Into<Topology>, vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        let max_hops = topo.into().max_route_hops();
        HeaderLayout {
            route_bits: SourceRoute::header_bits(max_hops),
            vc_bits: bits_for(vcs),
            type_bits: 3, // 2-bit kind + valid
        }
    }

    /// Head-flit header width (route + VC + type).
    #[must_use]
    pub fn head_bits(&self) -> usize {
        self.route_bits + self.vc_bits + self.type_bits
    }

    /// Body/tail header width (VC + type).
    #[must_use]
    pub fn body_bits(&self) -> usize {
        self.vc_bits + self.type_bits
    }
}

/// Bits needed to represent `n` distinct values (at least 1).
#[must_use]
pub fn bits_for(n: usize) -> usize {
    let mut bits = 1;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(id: u64, n: u8) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(1),
            src: NodeId(0),
            dst: NodeId(5),
            gen_cycle: 100,
            num_flits: n,
        }
    }

    #[test]
    fn flit_kinds_derive_from_sequence() {
        let flits: Vec<Flit> = (0..8)
            .map(|s| Flit::new(PacketSlot(7), FlowId(1), s, 8))
            .collect();
        assert!(flits[0].is_head());
        assert_eq!(flits[0].kind(), FlitKind::Head);
        assert!(flits[7].is_tail());
        assert_eq!(flits[7].kind(), FlitKind::Tail);
        assert!(flits[1..7].iter().all(|f| f.kind() == FlitKind::Body));
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq as usize == i));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        // With num_flits == 1 the head doubles as tail in VCT semantics.
        let f = Flit::new(PacketSlot(0), FlowId(0), 0, 1);
        assert!(f.is_head());
        assert!(f.is_tail());
        assert_eq!(f.kind(), FlitKind::Head);
    }

    #[test]
    fn flit_is_small() {
        // The whole point of the arena: the record moved per hop stays
        // within a quarter of the old ~64-byte inline layout.
        assert!(std::mem::size_of::<Flit>() <= 16);
    }

    #[test]
    fn arena_interns_and_recycles() {
        let mut arena = PacketArena::new();
        let a = arena.intern(&packet(7, 8));
        let b = arena.intern(&packet(9, 4));
        assert_ne!(a, b);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).id, PacketId(7));
        assert_eq!(arena.get(a).inject_cycle, u64::MAX);
        arena.mark_injected(a, 110);
        assert_eq!(arena.get(a).inject_cycle, 110);
        assert_eq!(arena.get(b).num_flits, 4);

        // Releasing recycles the slot without growing the slab.
        arena.release(a);
        assert_eq!(arena.live(), 1);
        let c = arena.intern(&packet(11, 8));
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(arena.get(c).id, PacketId(11));
        assert_eq!(arena.high_water(), 2);
    }

    #[test]
    fn paper_header_widths() {
        // Table II: header width 20 bits (head), 4 bits (body, tail) for
        // a 4x4 mesh with 2 VCs.
        let l = HeaderLayout::for_config(crate::topology::Mesh::paper_4x4(), 2);
        assert_eq!(l.route_bits, 14);
        assert_eq!(l.vc_bits, 1);
        assert_eq!(l.type_bits, 3);
        assert_eq!(l.head_bits(), 18, "within the paper's 20-bit budget");
        assert_eq!(l.body_bits(), 4);
    }

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(16), 4);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_rejected() {
        let mut arena = PacketArena::new();
        let _ = arena.intern(&packet(0, 0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_seq_rejected() {
        let _ = Flit::new(PacketSlot(0), FlowId(0), 3, 3);
    }
}
