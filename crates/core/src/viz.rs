//! ASCII rendering of the reconfigured topology (Fig 1).
//!
//! The paper's Fig 1 draws the same physical mesh three times — once per
//! application — with the preset single-cycle paths in bold. This module
//! renders that view: links carrying configured flows are drawn bold
//! (`═`/`║`), idle links thin (`─`/`│`), and routers where some flow
//! stops (buffers + arbitrates) are bracketed.

use crate::compile::CompiledApp;
use smart_sim::{Direction, LinkId, NodeId, Topology};
use std::collections::HashSet;

/// Render the virtual topology of `app` over `mesh`.
///
/// Rows print north (high y) first, matching the paper's figures.
#[must_use]
pub fn render_topology(topo: impl Into<Topology>, app: &CompiledApp) -> String {
    let mesh = topo.into();
    // Links used by any leg (either direction renders the segment bold).
    let mut used: HashSet<LinkId> = HashSet::new();
    for plan in app.flows.iter() {
        for leg in &plan.legs {
            used.extend(leg.links.iter().copied());
        }
    }
    let is_used = |from: NodeId, dir: Direction| -> bool {
        let fwd = LinkId { from, dir };
        let back = mesh.neighbor(from, dir).map(|n| LinkId {
            from: n,
            dir: dir.opposite(),
        });
        used.contains(&fwd) || back.is_some_and(|b| used.contains(&b))
    };
    let stops: HashSet<NodeId> = app.stops.values().flatten().copied().collect();

    let mut s = String::new();
    for y in (0..mesh.height()).rev() {
        // Node row.
        for x in 0..mesh.width() {
            let n = mesh.node_at(smart_sim::Coord { x, y });
            if stops.contains(&n) {
                s.push_str(&format!("[{:>2}]", n.0));
            } else {
                s.push_str(&format!(" {:>2} ", n.0));
            }
            if x + 1 < mesh.width() {
                let seg = if is_used(n, Direction::East) {
                    "═══"
                } else {
                    "───"
                };
                s.push_str(seg);
            }
        }
        s.push('\n');
        // Vertical links row.
        if y > 0 {
            for x in 0..mesh.width() {
                let n = mesh.node_at(smart_sim::Coord { x, y });
                let seg = if is_used(n, Direction::South) {
                    " ║  "
                } else {
                    " │  "
                };
                s.push_str(seg);
                if x + 1 < mesh.width() {
                    s.push_str("   ");
                }
            }
            s.push('\n');
        }
    }
    s
}

/// One-line summary of the virtual topology: bold links, stop routers,
/// bypass fraction.
#[must_use]
pub fn topology_summary(topo: impl Into<Topology>, app: &CompiledApp) -> String {
    let mesh = topo.into();
    let mut used: HashSet<LinkId> = HashSet::new();
    for plan in app.flows.iter() {
        for leg in &plan.legs {
            used.extend(leg.links.iter().copied());
        }
    }
    let stops: HashSet<NodeId> = app.stops.values().flatten().copied().collect();
    format!(
        "{} bold links, {} stop routers, {:.0}% of router visits bypassed",
        used.len(),
        stops.len(),
        app.bypass_fraction(mesh) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use smart_sim::{FlowId, SourceRoute};

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn bold_links_follow_the_flows() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let r = render_topology(mesh(), &app);
        // The bottom row (printed last) is the path 0-1-2-3: all bold.
        let bottom = r.lines().last().expect("nonempty");
        assert_eq!(bottom.matches('═').count(), 9, "{bottom}");
        // No vertical link is used.
        assert_eq!(r.matches('║').count(), 0);
        // No stops: no brackets.
        assert!(!r.contains('['));
    }

    #[test]
    fn stop_routers_are_bracketed() {
        let red = SourceRoute::from_router_path(mesh(), &[NodeId(13), NodeId(9), NodeId(10)]);
        let blue = SourceRoute::from_router_path(
            mesh(),
            &[
                NodeId(8),
                NodeId(9),
                NodeId(10),
                NodeId(11),
                NodeId(7),
                NodeId(3),
            ],
        );
        let app = compile(mesh(), 8, &[(FlowId(0), red), (FlowId(1), blue)]);
        let r = render_topology(mesh(), &app);
        assert!(r.contains("[ 9]"), "{r}");
        assert!(r.contains("[10]"), "{r}");
        assert!(!r.contains("[11]"), "11 is bypassed: {r}");
    }

    #[test]
    fn summary_counts() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let s = topology_summary(mesh(), &app);
        assert!(s.contains("3 bold links"), "{s}");
        assert!(s.contains("0 stop routers"), "{s}");
        assert!(s.contains("100% of router visits bypassed"), "{s}");
    }

    #[test]
    fn grid_dimensions() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(15)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let r = render_topology(mesh(), &app);
        // 4 node rows + 3 vertical-link rows.
        assert_eq!(r.lines().count(), 7);
        // Top row is printed first (nodes 12..15).
        assert!(r.lines().next().expect("rows").contains("12"));
    }
}
