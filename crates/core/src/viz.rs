//! ASCII rendering of the reconfigured topology (Fig 1) and of
//! telemetry time-series (bypass histogram, link-utilization heatmap).
//!
//! The paper's Fig 1 draws the same physical mesh three times — once per
//! application — with the preset single-cycle paths in bold. This module
//! renders that view: links carrying configured flows are drawn bold
//! (`═`/`║`), idle links thin (`─`/`│`), and routers where some flow
//! stops (buffers + arbitrates) are bracketed. The telemetry renderers
//! turn a [`TelemetrySeries`] into the paper's dynamic-behavior views:
//! how many hops SMART actually covers per launch, and where link
//! traffic concentrates over time.

use crate::compile::CompiledApp;
use smart_sim::topology::PORTS;
use smart_sim::{Direction, LinkId, NodeId, TelemetrySeries, Topology};
use std::collections::HashSet;

/// Render the virtual topology of `app` over `mesh`.
///
/// Rows print north (high y) first, matching the paper's figures.
#[must_use]
pub fn render_topology(topo: impl Into<Topology>, app: &CompiledApp) -> String {
    let mesh = topo.into();
    // Links used by any leg (either direction renders the segment bold).
    let mut used: HashSet<LinkId> = HashSet::new();
    for plan in app.flows.iter() {
        for leg in &plan.legs {
            used.extend(leg.links.iter().copied());
        }
    }
    let is_used = |from: NodeId, dir: Direction| -> bool {
        let fwd = LinkId { from, dir };
        let back = mesh.neighbor(from, dir).map(|n| LinkId {
            from: n,
            dir: dir.opposite(),
        });
        used.contains(&fwd) || back.is_some_and(|b| used.contains(&b))
    };
    let stops: HashSet<NodeId> = app.stops.values().flatten().copied().collect();

    let mut s = String::new();
    for y in (0..mesh.height()).rev() {
        // Node row.
        for x in 0..mesh.width() {
            let n = mesh.node_at(smart_sim::Coord { x, y });
            if stops.contains(&n) {
                s.push_str(&format!("[{:>2}]", n.0));
            } else {
                s.push_str(&format!(" {:>2} ", n.0));
            }
            if x + 1 < mesh.width() {
                let seg = if is_used(n, Direction::East) {
                    "═══"
                } else {
                    "───"
                };
                s.push_str(seg);
            }
        }
        s.push('\n');
        // Vertical links row.
        if y > 0 {
            for x in 0..mesh.width() {
                let n = mesh.node_at(smart_sim::Coord { x, y });
                let seg = if is_used(n, Direction::South) {
                    " ║  "
                } else {
                    " │  "
                };
                s.push_str(seg);
                if x + 1 < mesh.width() {
                    s.push_str("   ");
                }
            }
            s.push('\n');
        }
    }
    s
}

/// One-line summary of the virtual topology: bold links, stop routers,
/// bypass fraction.
#[must_use]
pub fn topology_summary(topo: impl Into<Topology>, app: &CompiledApp) -> String {
    let mesh = topo.into();
    let mut used: HashSet<LinkId> = HashSet::new();
    for plan in app.flows.iter() {
        for leg in &plan.legs {
            used.extend(leg.links.iter().copied());
        }
    }
    let stops: HashSet<NodeId> = app.stops.values().flatten().copied().collect();
    format!(
        "{} bold links, {} stop routers, {:.0}% of router visits bypassed",
        used.len(),
        stops.len(),
        app.bypass_fraction(mesh) * 100.0
    )
}

/// Render the achieved-bypass-length histogram of `series` as ASCII
/// bars: one row per length (0 = local/ejection legs, then 1..=the
/// longest achieved bypass), each counting flit launches whose leg
/// crossed exactly that many links in one cycle. `hpc_max` marks the
/// configured ceiling — the paper's central curve is how far short of
/// `HPC_max` real traffic stops.
#[must_use]
pub fn bypass_histogram(series: &TelemetrySeries, hpc_max: usize) -> String {
    const WIDTH: usize = 40;
    let totals = series.bypass_totals();
    // Always draw out to the configured ceiling so the HPC_max marker
    // shows even when no launch reached it.
    let top = series
        .max_bypass()
        .unwrap_or(0)
        .max(hpc_max.min(totals.len() - 1));
    let peak = totals.iter().copied().max().unwrap_or(0).max(1);
    let launches: u64 = totals.iter().sum();
    let mut s = String::new();
    s.push_str(&format!(
        "bypass length (links/cycle) over {} launches, HPC_max = {}\n",
        launches, hpc_max
    ));
    for (len, &count) in totals.iter().enumerate().take(top + 1) {
        let bar = (count as usize * WIDTH).div_ceil(peak as usize);
        let marker = if len == hpc_max { " <- HPC_max" } else { "" };
        let tag = if len == 0 { " (eject)" } else { "" };
        s.push_str(&format!(
            "{len:>3}{tag:<8} {count:>9} {}{marker}\n",
            "#".repeat(bar)
        ));
    }
    s.push_str(&format!(
        "ssr: {} setups, {} grants, {} premature stops\n",
        series.ssr_setups(),
        series.ssr_grants(),
        series.premature_stops()
    ));
    s
}

/// Render per-router link utilization over time as an ASCII heatmap:
/// one row per telemetry window, one column per router, shaded by that
/// router's outgoing-link flits in the window relative to the series
/// peak (` ` idle through `@` peak).
#[must_use]
pub fn link_heatmap_over_time(series: &TelemetrySeries, topo: impl Into<Topology>) -> String {
    const SHADES: [char; 6] = [' ', '.', ':', '=', '#', '@'];
    let mesh = topo.into();
    let n = mesh.len();
    // Outgoing flits per router per window.
    let rows: Vec<Vec<u64>> = series
        .windows
        .iter()
        .map(|w| {
            (0..n)
                .map(|r| w.link_flits[r * PORTS..(r + 1) * PORTS].iter().sum())
                .collect()
        })
        .collect();
    let peak = rows.iter().flatten().copied().max().unwrap_or(0).max(1);
    let mut s = String::new();
    s.push_str(&format!(
        "link flits per router per {}-cycle window (columns: router 0..{}, peak {} flits)\n",
        series.window,
        n - 1,
        peak
    ));
    for (w, row) in series.windows.iter().zip(rows.iter()) {
        s.push_str(&format!("c{:>8} |", w.end));
        for &flits in row {
            let shade = (flits as usize * (SHADES.len() - 1)).div_ceil(peak as usize);
            s.push(SHADES[shade.min(SHADES.len() - 1)]);
        }
        s.push_str(&format!("| {:>9} in flight\n", w.in_flight()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use smart_sim::{FlowId, SourceRoute};

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn bold_links_follow_the_flows() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let r = render_topology(mesh(), &app);
        // The bottom row (printed last) is the path 0-1-2-3: all bold.
        let bottom = r.lines().last().expect("nonempty");
        assert_eq!(bottom.matches('═').count(), 9, "{bottom}");
        // No vertical link is used.
        assert_eq!(r.matches('║').count(), 0);
        // No stops: no brackets.
        assert!(!r.contains('['));
    }

    #[test]
    fn stop_routers_are_bracketed() {
        let red = SourceRoute::from_router_path(mesh(), &[NodeId(13), NodeId(9), NodeId(10)]);
        let blue = SourceRoute::from_router_path(
            mesh(),
            &[
                NodeId(8),
                NodeId(9),
                NodeId(10),
                NodeId(11),
                NodeId(7),
                NodeId(3),
            ],
        );
        let app = compile(mesh(), 8, &[(FlowId(0), red), (FlowId(1), blue)]);
        let r = render_topology(mesh(), &app);
        assert!(r.contains("[ 9]"), "{r}");
        assert!(r.contains("[10]"), "{r}");
        assert!(!r.contains("[11]"), "11 is bypassed: {r}");
    }

    #[test]
    fn summary_counts() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let s = topology_summary(mesh(), &app);
        assert!(s.contains("3 bold links"), "{s}");
        assert!(s.contains("0 stop routers"), "{s}");
        assert!(s.contains("100% of router visits bypassed"), "{s}");
    }

    #[test]
    fn telemetry_renderers_shape_real_series() {
        use crate::config::NocConfig;
        use crate::noc::SmartNoc;
        use smart_sim::{ScriptedTraffic, TelemetryConfig};

        let cfg = NocConfig::paper_4x4();
        let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(3)).unwrap();
        let mut noc = SmartNoc::new(&cfg, &[(FlowId(0), route)]);
        noc.network_mut()
            .set_telemetry(TelemetryConfig::windowed(16));
        let mut traffic = ScriptedTraffic::new(
            vec![(0, FlowId(0)), (5, FlowId(0))],
            cfg.flits_per_packet(),
            noc.network().flows(),
            cfg.topology,
        );
        noc.network_mut().run_with(&mut traffic, 40);
        let series = noc.network_mut().take_telemetry().expect("enabled");

        let hist = bypass_histogram(&series, cfg.hpc_max);
        assert!(hist.contains("HPC_max = 8"), "{hist}");
        // Full 3-link bypass on the 0->3 flow: bucket 3 populated.
        assert!(hist.contains("\n  3"), "{hist}");
        assert!(hist.contains("<- HPC_max"), "{hist}");

        let heat = link_heatmap_over_time(&series, cfg.topology);
        // One row per window, 16 router columns between the pipes.
        for line in heat.lines().skip(1) {
            let cols = line.split('|').nth(1).expect("pipes").chars().count();
            assert_eq!(cols, 16, "{line}");
        }
        assert!(heat.lines().count() >= 2, "{heat}");
    }

    #[test]
    fn grid_dimensions() {
        let route = SourceRoute::xy(mesh(), NodeId(0), NodeId(15)).unwrap();
        let app = compile(mesh(), 8, &[(FlowId(0), route)]);
        let r = render_topology(mesh(), &app);
        // 4 node rows + 3 vertical-link rows.
        assert_eq!(r.lines().count(), 7);
        // Top row is printed first (nodes 12..15).
        assert!(r.lines().next().expect("rows").contains("12"));
    }
}
