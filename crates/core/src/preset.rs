//! Preset state and configuration registers.
//!
//! Before an application runs, every router's bypass muxes, crossbar
//! select lines and credit-crossbar selects are preset (Section IV), and
//! the presets are encoded "into a double-word configuration register for
//! each router", memory-mapped so reconfiguration is a handful of store
//! instructions (Section V).

use smart_sim::{Direction, NodeId, Topology};
use std::fmt;

/// Per-input bypass mux setting (Fig 6): the crossbar input port is fed
/// either straight from the incoming link (bypass) or from the input
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputMux {
    /// Incoming link feeds the crossbar directly — single-cycle bypass.
    Bypass,
    /// Input buffer feeds the crossbar — the flit stops here.
    Buffer,
}

/// Per-output crossbar select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XbarSelect {
    /// Statically connected to one (bypassed) input port.
    FromInput(Direction),
    /// Driven by switch allocation among buffered inputs.
    Arbitrated,
    /// No flow uses this output; it is clock-gated.
    Unused,
}

/// The preset state of one SMART router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterPreset {
    /// Input mux per port (E,S,W,N,C); `None` = port unused (gated).
    pub input_mux: [Option<InputMux>; 5],
    /// Crossbar select per output port (E,S,W,N,C).
    pub xbar: [XbarSelect; 5],
    /// Credit-crossbar select per credit output. Credit flows opposite
    /// to data: the credit output on data-input side `d` is fed from the
    /// credit input on data-output side `credit_xbar[d.index()]`.
    pub credit_xbar: [Option<Direction>; 5],
}

impl Default for RouterPreset {
    fn default() -> Self {
        RouterPreset {
            input_mux: [None; 5],
            xbar: [XbarSelect::Unused; 5],
            credit_xbar: [None; 5],
        }
    }
}

impl RouterPreset {
    /// A fully gated (idle) router.
    #[must_use]
    pub fn idle() -> Self {
        RouterPreset::default()
    }

    /// `true` if no port is in use.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.input_mux.iter().all(Option::is_none)
            && self.xbar.iter().all(|x| *x == XbarSelect::Unused)
    }

    /// Number of clock-enabled ports (inputs with a mux setting plus
    /// outputs not `Unused`) — drives the clock-gating power model.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.input_mux.iter().filter(|m| m.is_some()).count()
            + self
                .xbar
                .iter()
                .filter(|x| **x != XbarSelect::Unused)
                .count()
    }

    /// Encode into the double-word configuration register.
    ///
    /// Layout (LSB first): 5 × 2 bits input mux (0 = unused, 1 = buffer,
    /// 2 = bypass), then 5 × 3 bits crossbar select (0–4 = input index,
    /// 5 = arbitrated, 7 = unused), then 5 × 3 bits credit select
    /// (0–4 = data-output index, 7 = unused). 40 bits total.
    #[must_use]
    pub fn encode(&self) -> u64 {
        let mut w = 0u64;
        for (i, m) in self.input_mux.iter().enumerate() {
            let f = match m {
                None => 0u64,
                Some(InputMux::Buffer) => 1,
                Some(InputMux::Bypass) => 2,
            };
            w |= f << (2 * i);
        }
        for (i, x) in self.xbar.iter().enumerate() {
            let f = match x {
                XbarSelect::FromInput(d) => d.index() as u64,
                XbarSelect::Arbitrated => 5,
                XbarSelect::Unused => 7,
            };
            w |= f << (10 + 3 * i);
        }
        for (i, c) in self.credit_xbar.iter().enumerate() {
            let f = match c {
                Some(d) => d.index() as u64,
                None => 7,
            };
            w |= f << (25 + 3 * i);
        }
        w
    }

    /// Decode a configuration register written by [`RouterPreset::encode`].
    ///
    /// # Panics
    ///
    /// Panics on malformed field values.
    #[must_use]
    pub fn decode(w: u64) -> Self {
        let mut p = RouterPreset::default();
        for i in 0..5 {
            p.input_mux[i] = match (w >> (2 * i)) & 0b11 {
                0 => None,
                1 => Some(InputMux::Buffer),
                2 => Some(InputMux::Bypass),
                f => panic!("invalid input mux field {f}"),
            };
            p.xbar[i] = match (w >> (10 + 3 * i)) & 0b111 {
                d @ 0..=4 => XbarSelect::FromInput(Direction::from_index(d as usize)),
                5 => XbarSelect::Arbitrated,
                7 => XbarSelect::Unused,
                f => panic!("invalid crossbar select field {f}"),
            };
            p.credit_xbar[i] = match (w >> (25 + 3 * i)) & 0b111 {
                d @ 0..=4 => Some(Direction::from_index(d as usize)),
                7 => None,
                f => panic!("invalid credit select field {f}"),
            };
        }
        p
    }
}

impl fmt::Display for RouterPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in[")?;
        for (i, m) in self.input_mux.iter().enumerate() {
            let c = match m {
                None => '-',
                Some(InputMux::Buffer) => 'B',
                Some(InputMux::Bypass) => 'L',
            };
            write!(f, "{}{c}", Direction::from_index(i))?;
        }
        write!(f, "] out[")?;
        for (i, x) in self.xbar.iter().enumerate() {
            match x {
                XbarSelect::Unused => write!(f, "{}- ", Direction::from_index(i))?,
                XbarSelect::Arbitrated => write!(f, "{}=SA ", Direction::from_index(i))?,
                XbarSelect::FromInput(d) => write!(f, "{}<{d} ", Direction::from_index(i))?,
            }
        }
        write!(f, "]")
    }
}

/// One memory-mapped store operation in the reconfiguration sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOp {
    /// Register address.
    pub addr: u64,
    /// Double-word value.
    pub value: u64,
}

/// The presets of every router in the mesh for one application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshPresets {
    mesh: Topology,
    routers: Vec<RouterPreset>,
}

impl MeshPresets {
    /// All-idle presets for `mesh`.
    #[must_use]
    pub fn idle(topo: impl Into<Topology>) -> Self {
        let mesh = topo.into();
        MeshPresets {
            mesh,
            routers: vec![RouterPreset::idle(); mesh.len()],
        }
    }

    /// The topology these presets configure.
    #[must_use]
    pub fn mesh(&self) -> Topology {
        self.mesh
    }

    /// Preset of one router.
    #[must_use]
    pub fn router(&self, node: NodeId) -> &RouterPreset {
        &self.routers[node.0 as usize]
    }

    /// Mutable preset of one router.
    pub fn router_mut(&mut self, node: NodeId) -> &mut RouterPreset {
        &mut self.routers[node.0 as usize]
    }

    /// Total enabled ports across the mesh.
    #[must_use]
    pub fn enabled_ports(&self) -> usize {
        self.routers.iter().map(RouterPreset::enabled_ports).sum()
    }

    /// The memory-mapped store sequence that installs these presets:
    /// one double-word store per router (Section V — "for a 16-node
    /// SMART NoC, there are 16 registers to be set which correspond to
    /// 16 instructions").
    #[must_use]
    pub fn store_sequence(&self, base_addr: u64) -> Vec<StoreOp> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, p)| StoreOp {
                addr: base_addr + 8 * i as u64,
                value: p.encode(),
            })
            .collect()
    }

    /// Rebuild presets from a store sequence (the hardware's view).
    ///
    /// # Panics
    ///
    /// Panics if the sequence does not cover exactly the mesh's
    /// registers at `base_addr`.
    #[must_use]
    pub fn from_store_sequence(
        topo: impl Into<Topology>,
        base_addr: u64,
        stores: &[StoreOp],
    ) -> Self {
        let mesh = topo.into();
        assert_eq!(stores.len(), mesh.len(), "one store per router required");
        let mut routers = vec![RouterPreset::idle(); mesh.len()];
        for s in stores {
            let idx = (s.addr - base_addr) / 8;
            assert!(
                s.addr >= base_addr
                    && (idx as usize) < mesh.len()
                    && (s.addr - base_addr).is_multiple_of(8),
                "store address {:#x} outside the register file",
                s.addr
            );
            routers[idx as usize] = RouterPreset::decode(s.value);
        }
        MeshPresets { mesh, routers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RouterPreset {
        RouterPreset {
            input_mux: [
                Some(InputMux::Bypass),
                None,
                Some(InputMux::Buffer),
                None,
                Some(InputMux::Buffer),
            ],
            xbar: [
                XbarSelect::FromInput(Direction::West),
                XbarSelect::Unused,
                XbarSelect::Unused,
                XbarSelect::Arbitrated,
                XbarSelect::Unused,
            ],
            credit_xbar: [None, None, Some(Direction::East), None, None],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        assert_eq!(RouterPreset::decode(p.encode()), p);
        let idle = RouterPreset::idle();
        assert_eq!(RouterPreset::decode(idle.encode()), idle);
    }

    #[test]
    fn register_fits_double_word() {
        // 40 bits used; must fit 64 with headroom.
        let w = sample().encode();
        assert!(w < (1u64 << 40));
    }

    #[test]
    fn enabled_port_counting() {
        let p = sample();
        // 3 inputs in use + 2 outputs (E static, N arbitrated).
        assert_eq!(p.enabled_ports(), 5);
        assert_eq!(RouterPreset::idle().enabled_ports(), 0);
        assert!(RouterPreset::idle().is_idle());
        assert!(!p.is_idle());
    }

    #[test]
    fn store_sequence_is_one_per_router() {
        let mesh = smart_sim::Mesh::paper_4x4();
        let mut presets = MeshPresets::idle(mesh);
        *presets.router_mut(NodeId(5)) = sample();
        let stores = presets.store_sequence(0x4000_0000);
        assert_eq!(stores.len(), 16, "16 registers = 16 instructions");
        assert_eq!(stores[5].addr, 0x4000_0000 + 40);
        let back = MeshPresets::from_store_sequence(mesh, 0x4000_0000, &stores);
        assert_eq!(back, presets);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("EL"), "bypass East input shown: {s}");
        assert!(s.contains("E<W"), "static select shown: {s}");
        assert!(s.contains("N=SA"), "arbitrated output shown: {s}");
    }

    #[test]
    #[should_panic(expected = "one store per router")]
    fn short_sequence_rejected() {
        let mesh = smart_sim::Mesh::paper_4x4();
        let _ = MeshPresets::from_store_sequence(mesh, 0, &[]);
    }
}
