//! The preset compiler: from routed flows to stop sets, single-cycle
//! segments, flow plans and router presets.
//!
//! Given an application's flows mapped onto static routes, SMART presets
//! the network so that every flit bypasses as many routers as possible.
//! A flit must **stop** (be buffered and arbitrate) at router `r` exactly
//! when the preset hardware cannot disambiguate it (Section IV):
//!
//! * its input link at `r` also carries a flow needing a *different*
//!   output (the bypass mux would have to look at the flit), or
//! * its output port at `r` is also used by a flow arriving on a
//!   *different* input (the crossbar select would have to arbitrate), or
//! * the preceding stop is more than `HPC_max` hops away (the paper's
//!   8 mm at 2 GHz single-cycle reach, Table I).
//!
//! The first two rules collapse to one statement: *an input port is a
//! stop-input iff its flows disagree on the output, or any of its
//! outputs is shared with another input.* Flows stop wherever they enter
//! a stop-input. The compiler computes this to fixpoint (HPC splits can
//! create new stop-inputs), then emits [`FlowPlan`]s with merged
//! `ST+LT` single-cycle legs and [`MeshPresets`] for every router.

use crate::preset::{InputMux, MeshPresets, XbarSelect};
use smart_sim::forward::{Endpoint, FlowPlan, Segment, Sender};
use smart_sim::{Direction, FlowId, FlowTable, LinkId, NodeId, SourceRoute, Topology};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of compiling one application onto the SMART mesh.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    /// Flow plans (single-cycle multi-hop legs) for the simulator.
    pub flows: FlowTable,
    /// Router presets (bypass muxes, crossbar selects, credit crossbars).
    pub presets: MeshPresets,
    /// Stop routers per flow, in travel order.
    pub stops: BTreeMap<FlowId, Vec<NodeId>>,
}

impl CompiledApp {
    /// Mean number of stops per flow — the paper's latency driver
    /// (zero-load latency is `1 + 3·stops`).
    #[must_use]
    pub fn avg_stops(&self) -> f64 {
        if self.stops.is_empty() {
            return 0.0;
        }
        let total: usize = self.stops.values().map(Vec::len).sum();
        total as f64 / self.stops.len() as f64
    }

    /// Fraction of (flow, router) visits that are bypassed.
    #[must_use]
    pub fn bypass_fraction(&self, topo: impl Into<Topology>) -> f64 {
        let mesh = topo.into();
        let mut visits = 0usize;
        let mut stops = 0usize;
        for plan in self.flows.iter() {
            visits += plan.route.routers(mesh).len();
            stops += self.stops[&plan.flow].len();
        }
        if visits == 0 {
            return 0.0;
        }
        1.0 - stops as f64 / visits as f64
    }
}

/// Per-flow port usage at each visited router.
#[derive(Debug, Clone)]
struct FlowUse {
    flow: FlowId,
    routers: Vec<NodeId>,
    /// Input direction at each router (`Core` at the source).
    inputs: Vec<Direction>,
    /// Output direction at each router (`Core` at the destination).
    outputs: Vec<Direction>,
}

fn flow_use(mesh: Topology, flow: FlowId, route: &SourceRoute) -> FlowUse {
    let routers = route.routers(mesh);
    let outputs = route.outputs();
    let mut inputs = Vec::with_capacity(routers.len());
    inputs.push(Direction::Core);
    for o in &outputs[..outputs.len() - 1] {
        inputs.push(o.opposite());
    }
    FlowUse {
        flow,
        routers,
        inputs,
        outputs,
    }
}

/// Compile `routes` for a mesh with single-cycle reach `hpc_max`.
///
/// # Panics
///
/// Panics if `hpc_max` is zero, a flow id repeats, or the resulting
/// presets would be inconsistent (a compiler bug, not a user error —
/// the stop rules guarantee consistency for any route set).
#[must_use]
pub fn compile(
    topo: impl Into<Topology>,
    hpc_max: usize,
    routes: &[(FlowId, SourceRoute)],
) -> CompiledApp {
    let mesh = topo.into();
    assert!(hpc_max > 0, "HPC_max must be at least 1");
    let uses: Vec<FlowUse> = routes.iter().map(|(f, r)| flow_use(mesh, *f, r)).collect();

    // --- Conflict-driven stop inputs. ---
    // (router, input) -> set of outputs used through it.
    let mut in_outs: HashMap<(NodeId, Direction), BTreeSet<Direction>> = HashMap::new();
    // (router, output) -> set of inputs feeding it.
    let mut out_ins: HashMap<(NodeId, Direction), BTreeSet<Direction>> = HashMap::new();
    for u in &uses {
        for i in 0..u.routers.len() {
            let r = u.routers[i];
            in_outs
                .entry((r, u.inputs[i]))
                .or_default()
                .insert(u.outputs[i]);
            out_ins
                .entry((r, u.outputs[i]))
                .or_default()
                .insert(u.inputs[i]);
        }
    }
    let mut stop_inputs: HashMap<NodeId, BTreeSet<Direction>> = HashMap::new();
    for ((r, input), outs) in &in_outs {
        if outs.len() > 1 {
            stop_inputs.entry(*r).or_default().insert(*input);
        }
    }
    for ((r, _out), ins) in &out_ins {
        if ins.len() > 1 {
            for i in ins {
                stop_inputs.entry(*r).or_default().insert(*i);
            }
        }
    }

    // --- HPC_max splitting, to fixpoint. ---
    loop {
        let mut changed = false;
        for u in &uses {
            let stops = stop_indices(u, &stop_inputs);
            let mut prev = 0usize; // links consumed up to the last boundary
            for &s in &stops {
                if s - prev > hpc_max {
                    let split = prev + hpc_max;
                    stop_inputs
                        .entry(u.routers[split])
                        .or_default()
                        .insert(u.inputs[split]);
                    changed = true;
                }
                prev = s;
            }
            let last = u.routers.len() - 1;
            if last - prev > hpc_max {
                let split = prev + hpc_max;
                stop_inputs
                    .entry(u.routers[split])
                    .or_default()
                    .insert(u.inputs[split]);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- Plans. ---
    let mut flows = FlowTable::new();
    let mut stops_by_flow = BTreeMap::new();
    for ((_, route), u) in routes.iter().zip(uses.iter()) {
        let stops = stop_indices(u, &stop_inputs);
        stops_by_flow.insert(u.flow, stops.iter().map(|&i| u.routers[i]).collect());
        let plan = build_plan(mesh, u, route, &stops);
        flows.insert(mesh, plan);
    }

    // --- Presets. ---
    let mut presets = MeshPresets::idle(mesh);
    for u in &uses {
        for i in 0..u.routers.len() {
            let r = u.routers[i];
            let is_stop = stop_inputs
                .get(&r)
                .is_some_and(|s| s.contains(&u.inputs[i]));
            let p = presets.router_mut(r);
            let mux = if is_stop {
                InputMux::Buffer
            } else {
                InputMux::Bypass
            };
            let slot = &mut p.input_mux[u.inputs[i].index()];
            match slot {
                None => *slot = Some(mux),
                Some(existing) => assert_eq!(
                    *existing, mux,
                    "{}: input mux conflict at {r} {}",
                    u.flow, u.inputs[i]
                ),
            }
            let want = if is_stop {
                XbarSelect::Arbitrated
            } else {
                XbarSelect::FromInput(u.inputs[i])
            };
            let xslot = &mut p.xbar[u.outputs[i].index()];
            match xslot {
                XbarSelect::Unused => *xslot = want,
                other => assert_eq!(
                    *other, want,
                    "{}: crossbar select conflict at {r} {}",
                    u.flow, u.outputs[i]
                ),
            }
            if !is_stop {
                // Pass-through credit crossbar: credits for this flow
                // enter on the data-output side and leave on the
                // data-input side.
                let cslot = &mut p.credit_xbar[u.inputs[i].index()];
                match cslot {
                    None => *cslot = Some(u.outputs[i]),
                    Some(existing) => assert_eq!(
                        *existing, u.outputs[i],
                        "{}: credit crossbar conflict at {r}",
                        u.flow
                    ),
                }
            }
        }
    }

    // --- Single-cycle link exclusivity: every link belongs to one leg
    // sender. ---
    let mut link_owner: HashMap<LinkId, Sender> = HashMap::new();
    for plan in flows.iter() {
        for leg in &plan.legs {
            for link in &leg.links {
                if let Some(prev) = link_owner.insert(*link, leg.sender) {
                    assert_eq!(
                        prev, leg.sender,
                        "link {link} shared across senders: preset compiler bug"
                    );
                }
            }
        }
    }

    CompiledApp {
        flows,
        presets,
        stops: stops_by_flow,
    }
}

/// Indices (into the flow's router list) where the flow stops.
fn stop_indices(u: &FlowUse, stop_inputs: &HashMap<NodeId, BTreeSet<Direction>>) -> Vec<usize> {
    (0..u.routers.len())
        .filter(|&i| {
            stop_inputs
                .get(&u.routers[i])
                .is_some_and(|s| s.contains(&u.inputs[i]))
        })
        .collect()
}

/// Build the flow plan given its stop indices.
fn build_plan(mesh: Topology, u: &FlowUse, route: &SourceRoute, stops: &[usize]) -> FlowPlan {
    let links = route.links(mesh);
    let last = u.routers.len() - 1;
    let mut legs = Vec::new();

    // Boundaries: source NIC, each stop, destination NIC.
    let mut from: Option<usize> = None; // None = source NIC
    let mut remaining: Vec<usize> = stops.to_vec();
    remaining.push(usize::MAX); // sentinel for the final leg to the NIC
    for &to in &remaining {
        let (sender, out_dir, start_link) = match from {
            None => (
                Sender::Nic(u.routers[0]),
                if to == 0 {
                    Direction::Core
                } else {
                    u.outputs[0]
                },
                0usize,
            ),
            Some(j) => (
                Sender::RouterOutput(u.routers[j], u.outputs[j]),
                u.outputs[j],
                j,
            ),
        };
        if to == usize::MAX {
            // Final leg to the destination NIC.
            let start = from.map_or(0, |j| j);
            legs.push(Segment {
                sender,
                out_dir,
                links: links[start..].to_vec(),
                end: Endpoint::Nic {
                    node: u.routers[last],
                },
                cycles: 1,
            });
            break;
        }
        legs.push(Segment {
            sender,
            out_dir,
            links: links[start_link..to].to_vec(),
            end: Endpoint::Stop {
                router: u.routers[to],
                in_dir: u.inputs[to],
            },
            cycles: 1,
        });
        from = Some(to);
    }
    FlowPlan {
        flow: u.flow,
        route: route.clone(),
        legs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    fn route(path: &[u16]) -> SourceRoute {
        let nodes: Vec<NodeId> = path.iter().map(|n| NodeId(*n)).collect();
        SourceRoute::from_router_path(mesh(), &nodes)
    }

    #[test]
    fn lone_flow_has_no_stops() {
        let app = compile(mesh(), 8, &[(FlowId(0), route(&[0, 1, 2, 3]))]);
        assert_eq!(app.stops[&FlowId(0)], Vec::<NodeId>::new());
        let plan = app.flows.plan(FlowId(0));
        assert_eq!(plan.legs.len(), 1);
        assert_eq!(
            plan.zero_load_latency(),
            1,
            "source NIC to dest NIC in 1 cycle"
        );
        assert!((app.bypass_fraction(mesh()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_link_forces_stops_on_both_sides() {
        // The paper's Fig 7 red/blue situation: two flows share link
        // 9 -> 10; both stop at 9 (output conflict) and at 10 (input
        // conflict).
        let red = route(&[13, 9, 10]);
        let blue = route(&[8, 9, 10, 11, 7, 3]);
        let app = compile(mesh(), 8, &[(FlowId(0), red), (FlowId(1), blue)]);
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(9), NodeId(10)]);
        assert_eq!(app.stops[&FlowId(1)], vec![NodeId(9), NodeId(10)]);
        // Zero-load latencies: 1 + 3 stops · 2 = 7 (the figure's labels).
        assert_eq!(app.flows.plan(FlowId(0)).zero_load_latency(), 7);
        assert_eq!(app.flows.plan(FlowId(1)).zero_load_latency(), 7);
    }

    #[test]
    fn same_source_different_directions_stop_at_source() {
        // Two flows from node 5: one east, one north. The Core input at
        // router 5 carries flows with different outputs -> both stop at
        // the source router.
        let a = route(&[5, 6, 7]);
        let b = route(&[5, 9, 13]);
        let app = compile(mesh(), 8, &[(FlowId(0), a), (FlowId(1), b)]);
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(5)]);
        assert_eq!(app.stops[&FlowId(1)], vec![NodeId(5)]);
        assert_eq!(app.flows.plan(FlowId(0)).zero_load_latency(), 4);
    }

    #[test]
    fn shared_sink_stops_at_destination() {
        // Two flows into node 6 from different inputs: the Core output
        // at 6 has two inputs -> both stop at 6 (serialized ejection).
        let a = route(&[5, 6]);
        let b = route(&[10, 6]);
        let app = compile(mesh(), 8, &[(FlowId(0), a), (FlowId(1), b)]);
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(6)]);
        assert_eq!(app.stops[&FlowId(1)], vec![NodeId(6)]);
    }

    #[test]
    fn hpc_max_splits_long_segments() {
        // A 6-hop unconflicted flow with HPC_max = 2 must stop every
        // 2 hops: at router index 2 and 4 (routers 2 and 8? path
        // 0,1,2,3,7,11,15).
        let app = compile(mesh(), 2, &[(FlowId(0), route(&[0, 1, 2, 3, 7, 11, 15]))]);
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(2), NodeId(7)]);
        // With HPC_max = 8 the same flow flies through.
        let app8 = compile(mesh(), 8, &[(FlowId(0), route(&[0, 1, 2, 3, 7, 11, 15]))]);
        assert!(app8.stops[&FlowId(0)].is_empty());
    }

    #[test]
    fn hpc_one_degenerates_to_per_hop_stops() {
        let app = compile(mesh(), 1, &[(FlowId(0), route(&[0, 1, 2, 3]))]);
        // Stops after every link except the last (the final link plus
        // ejection through the destination crossbar fits one cycle).
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(1), NodeId(2)]);
        // 1 + 3·2 = 7 < mesh baseline's 16: ST+LT merging still wins.
        assert_eq!(app.flows.plan(FlowId(0)).zero_load_latency(), 7);
    }

    #[test]
    fn presets_mark_bypass_and_arbitrated_ports() {
        let red = route(&[13, 9, 10]);
        let blue = route(&[8, 9, 10, 11, 7, 3]);
        let app = compile(mesh(), 8, &[(FlowId(0), red), (FlowId(1), blue)]);
        // Router 9: both inputs buffered, East output arbitrated.
        let p9 = app.presets.router(NodeId(9));
        assert_eq!(
            p9.input_mux[Direction::North.index()],
            Some(InputMux::Buffer)
        );
        assert_eq!(
            p9.input_mux[Direction::West.index()],
            Some(InputMux::Buffer)
        );
        assert_eq!(p9.xbar[Direction::East.index()], XbarSelect::Arbitrated);
        // Router 11: blue bypasses it (in W, out S... path 10->11->7:
        // enters 11 at West, leaves South).
        let p11 = app.presets.router(NodeId(11));
        assert_eq!(
            p11.input_mux[Direction::West.index()],
            Some(InputMux::Bypass)
        );
        assert_eq!(
            p11.xbar[Direction::South.index()],
            XbarSelect::FromInput(Direction::West)
        );
        // And the credit crossbar mirrors the data path at 11.
        assert_eq!(
            p11.credit_xbar[Direction::West.index()],
            Some(Direction::South)
        );
        // Router 13 (red's source, pure bypass): Core input bypassed into
        // the South output.
        let p13 = app.presets.router(NodeId(13));
        assert_eq!(
            p13.input_mux[Direction::Core.index()],
            Some(InputMux::Bypass)
        );
        assert_eq!(
            p13.xbar[Direction::South.index()],
            XbarSelect::FromInput(Direction::Core)
        );
    }

    #[test]
    fn unused_routers_stay_idle_for_clock_gating() {
        let app = compile(mesh(), 8, &[(FlowId(0), route(&[0, 1]))]);
        assert!(app.presets.router(NodeId(15)).is_idle());
        assert!(app.presets.router(NodeId(5)).is_idle());
        assert!(!app.presets.router(NodeId(0)).is_idle());
    }

    #[test]
    fn merged_flows_share_a_sender_leg() {
        // Two flows from the same source, same first link, diverging
        // later: they stop at the source (output conflict? no — same
        // output E at 0; but at router 1 they diverge -> input conflict
        // at 1) and both legs 0->1 share the NIC sender.
        let a = route(&[0, 1, 2]);
        let b = route(&[0, 1, 5]);
        let app = compile(mesh(), 8, &[(FlowId(0), a), (FlowId(1), b)]);
        assert_eq!(app.stops[&FlowId(0)], vec![NodeId(1)]);
        assert_eq!(app.stops[&FlowId(1)], vec![NodeId(1)]);
        let plan_a = app.flows.plan(FlowId(0));
        assert_eq!(plan_a.legs[0].sender, Sender::Nic(NodeId(0)));
        assert_eq!(plan_a.legs[0].links.len(), 1);
    }

    #[test]
    fn avg_stops_reflects_contention() {
        let free = compile(mesh(), 8, &[(FlowId(0), route(&[0, 1, 2]))]);
        assert_eq!(free.avg_stops(), 0.0);
        let contended = compile(
            mesh(),
            8,
            &[(FlowId(0), route(&[5, 6])), (FlowId(1), route(&[10, 6]))],
        );
        assert_eq!(contended.avg_stops(), 1.0);
    }

    #[test]
    #[should_panic(expected = "HPC_max must be at least 1")]
    fn zero_hpc_rejected() {
        let _ = compile(mesh(), 0, &[]);
    }
}
