//! Worked scenarios from the paper's figures, reusable by examples,
//! tests and benches.

use smart_sim::{FlowId, Mesh, NodeId, SourceRoute, Topology};

/// The four flows of **Fig 7** ("SMART NoC in action"): green and purple
/// fly source-NIC to destination-NIC in one cycle; red and blue share
/// link 9→10 and therefore stop at routers 9 and 10, arriving at cycle 7.
///
/// Returns `(flow, route, expected_zero_load_latency)`.
#[must_use]
pub fn fig7_flows(topo: impl Into<Topology>) -> Vec<(FlowId, SourceRoute, u64)> {
    let mesh = topo.into();
    let path = |p: &[u16]| {
        let nodes: Vec<NodeId> = p.iter().map(|n| NodeId(*n)).collect();
        SourceRoute::from_router_path(mesh, &nodes)
    };
    vec![
        // Green: a single-cycle multi-hop flow along the bottom row.
        (FlowId(0), path(&[0, 1, 2]), 1),
        // Purple: a single-cycle flow with a turn, no overlaps.
        (FlowId(1), path(&[4, 5, 6, 7]), 1),
        // Red: 13 → 9 → 10 (ends at 10), shares 9→10 with blue.
        (FlowId(2), path(&[13, 9, 10]), 7),
        // Blue: 8 → 9 → 10 → 11 → 7 → 3, shares 9→10 with red.
        (FlowId(3), path(&[8, 9, 10, 11, 7, 3]), 7),
    ]
}

/// Route sets sketching **Fig 1**'s three applications (WLAN, H264,
/// VOPD) as simple distinct communication patterns on the 4×4 mesh —
/// used by the reconfiguration example. (The full task-graph versions
/// live in `smart-taskgraph` + `smart-mapping`.)
#[must_use]
pub fn fig1_sketch_apps(mesh: Mesh) -> Vec<(&'static str, Vec<(FlowId, SourceRoute)>)> {
    let xy = |f: u32, s: u16, d: u16| {
        let r = SourceRoute::xy(mesh, NodeId(s), NodeId(d)).expect("distinct endpoints");
        (FlowId(f), r)
    };
    vec![
        ("WLAN", vec![xy(0, 0, 3), xy(1, 4, 7), xy(2, 8, 11)]),
        ("H264", vec![xy(0, 0, 15), xy(1, 3, 12), xy(2, 5, 10)]),
        ("VOPD", vec![xy(0, 12, 15), xy(1, 13, 1), xy(2, 2, 14)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    #[test]
    fn fig7_expected_latencies_come_from_the_compiler() {
        let mesh = Mesh::paper_4x4();
        let flows = fig7_flows(mesh);
        let routes: Vec<(FlowId, SourceRoute)> =
            flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
        let app = compile(mesh, 8, &routes);
        for (flow, _, expected) in &flows {
            assert_eq!(
                app.flows.plan(*flow).zero_load_latency(),
                *expected,
                "{flow}"
            );
        }
        // Red and blue stop exactly at routers 9 and 10 (paper text).
        assert_eq!(app.stops[&FlowId(2)], vec![NodeId(9), NodeId(10)]);
        assert_eq!(app.stops[&FlowId(3)], vec![NodeId(9), NodeId(10)]);
        // Green and purple never stop.
        assert!(app.stops[&FlowId(0)].is_empty());
        assert!(app.stops[&FlowId(1)].is_empty());
    }

    #[test]
    fn fig1_apps_have_distinct_presets() {
        let mesh = Mesh::paper_4x4();
        let apps = fig1_sketch_apps(mesh);
        let encodings: Vec<Vec<u64>> = apps
            .iter()
            .map(|(_, routes)| {
                let app = compile(mesh, 8, routes);
                mesh.nodes()
                    .map(|n| app.presets.router(n).encode())
                    .collect()
            })
            .collect();
        assert_ne!(encodings[0], encodings[1]);
        assert_ne!(encodings[1], encodings[2]);
        assert_ne!(encodings[0], encodings[2]);
    }
}
