//! Runtime reconfiguration across applications (Fig 1, Section V).
//!
//! "Before each application runs, these registers need to be set
//! properly to suit the application's traffic characteristic. The
//! network needs to be emptied while setting the registers." The cost is
//! one memory store per router — 16 instructions on the 4×4 mesh.

use crate::config::NocConfig;
use crate::noc::SmartNoc;
use crate::preset::StoreOp;
use smart_sim::{FlowId, SourceRoute};
use std::fmt;

/// Why a reconfiguration was refused: the previous application's
/// in-flight traffic did not drain within the budget. Reconfiguring a
/// non-empty network would corrupt in-flight packets, so the swap is
/// not performed — the previous application stays loaded (its network
/// advanced by the failed drain attempt) and the caller may retry with
/// a larger budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigError {
    /// Application whose traffic failed to drain.
    pub current_app: String,
    /// Application that was being loaded.
    pub next_app: String,
    /// The drain budget that was exhausted.
    pub max_drain_cycles: u64,
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot reconfigure to {}: {} traffic did not drain within {} cycles",
            self.next_app, self.current_app, self.max_drain_cycles
        )
    }
}

impl std::error::Error for ReconfigError {}

/// Report of one reconfiguration event.
#[derive(Debug, Clone)]
pub struct ReconfigReport {
    /// Application being loaded.
    pub app_name: String,
    /// Cycles spent draining the previous application's in-flight
    /// traffic (0 for the first application).
    pub drain_cycles: u64,
    /// The memory-mapped store sequence that installs the presets.
    pub stores: Vec<StoreOp>,
    /// Runtime cost in instructions (= stores; Section V).
    pub cost_instructions: usize,
}

/// A SMART NoC that can be retargeted to successive applications.
#[derive(Debug)]
pub struct ReconfigurableNoc {
    cfg: NocConfig,
    base_addr: u64,
    current: Option<(String, SmartNoc)>,
    reconfig_count: u64,
}

impl ReconfigurableNoc {
    /// A reconfigurable NoC with preset registers mapped at `base_addr`.
    #[must_use]
    pub fn new(cfg: NocConfig, base_addr: u64) -> Self {
        ReconfigurableNoc {
            cfg,
            base_addr,
            current: None,
            reconfig_count: 0,
        }
    }

    /// The design point.
    #[must_use]
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of reconfigurations performed.
    #[must_use]
    pub fn reconfig_count(&self) -> u64 {
        self.reconfig_count
    }

    /// Name of the application currently loaded.
    #[must_use]
    pub fn current_app(&self) -> Option<&str> {
        self.current.as_ref().map(|(n, _)| n.as_str())
    }

    /// The live network for the current application.
    #[must_use]
    pub fn noc(&self) -> Option<&SmartNoc> {
        self.current.as_ref().map(|(_, n)| n)
    }

    /// Mutable access to the live network.
    pub fn noc_mut(&mut self) -> Option<&mut SmartNoc> {
        self.current.as_mut().map(|(_, n)| n)
    }

    /// Drain the network and load `routes` as application `name`:
    /// compiles presets, emits the store sequence, and swaps the
    /// simulated network.
    ///
    /// # Errors
    ///
    /// Returns a [`ReconfigError`] if the previous application's
    /// traffic cannot drain within `max_drain_cycles` — reconfiguring a
    /// non-empty network corrupts in-flight packets, so the previous
    /// application stays loaded instead.
    pub fn load_app(
        &mut self,
        name: &str,
        routes: &[(FlowId, SourceRoute)],
        max_drain_cycles: u64,
    ) -> Result<ReconfigReport, ReconfigError> {
        let mut drain_cycles = 0;
        if let Some((prev_name, prev)) = self.current.as_mut() {
            let before = prev.network().cycle();
            if !prev.network_mut().drain(max_drain_cycles) {
                return Err(ReconfigError {
                    current_app: prev_name.clone(),
                    next_app: name.to_owned(),
                    max_drain_cycles,
                });
            }
            drain_cycles = prev.network().cycle() - before;
        }
        let noc = SmartNoc::new(&self.cfg, routes);
        let stores = noc.presets().store_sequence(self.base_addr);
        let cost = stores.len();
        self.current = Some((name.to_owned(), noc));
        self.reconfig_count += 1;
        Ok(ReconfigReport {
            app_name: name.to_owned(),
            drain_cycles,
            stores,
            cost_instructions: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::{Mesh, NodeId, Packet, PacketId};

    fn routes_row() -> Vec<(FlowId, SourceRoute)> {
        let m = Mesh::paper_4x4();
        vec![(FlowId(0), SourceRoute::xy(m, NodeId(0), NodeId(3)).unwrap())]
    }

    fn routes_col() -> Vec<(FlowId, SourceRoute)> {
        let m = Mesh::paper_4x4();
        vec![(
            FlowId(0),
            SourceRoute::xy(m, NodeId(0), NodeId(12)).unwrap(),
        )]
    }

    #[test]
    fn sixteen_stores_per_reconfiguration() {
        let mut noc = ReconfigurableNoc::new(NocConfig::paper_4x4(), 0x4000_0000);
        let rep = noc
            .load_app("wlan", &routes_row(), 1000)
            .expect("first load");
        assert_eq!(rep.cost_instructions, 16, "16 nodes = 16 instructions");
        assert_eq!(rep.drain_cycles, 0, "first app needs no drain");
        assert_eq!(noc.current_app(), Some("wlan"));
    }

    #[test]
    fn presets_change_across_apps() {
        let mut noc = ReconfigurableNoc::new(NocConfig::paper_4x4(), 0);
        let a = noc.load_app("row", &routes_row(), 1000).expect("load row");
        let b = noc.load_app("col", &routes_col(), 1000).expect("load col");
        assert_ne!(
            a.stores, b.stores,
            "different applications must produce different presets"
        );
        assert_eq!(noc.reconfig_count(), 2);
    }

    #[test]
    fn drain_happens_between_apps() {
        let mut noc = ReconfigurableNoc::new(NocConfig::paper_4x4(), 0);
        noc.load_app("row", &routes_row(), 1000).expect("load row");
        let net = noc.noc_mut().expect("loaded").network_mut();
        net.offer(Packet {
            id: PacketId(0),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            gen_cycle: 0,
            num_flits: 8,
        });
        net.step(); // leave traffic in flight
        let rep = noc.load_app("col", &routes_col(), 1000).expect("drains");
        assert!(rep.drain_cycles > 0, "in-flight traffic forced a drain");
    }

    #[test]
    fn refusing_to_reconfigure_live_traffic() {
        let mut noc = ReconfigurableNoc::new(NocConfig::paper_4x4(), 0);
        noc.load_app("row", &routes_row(), 1000).expect("load row");
        let net = noc.noc_mut().expect("loaded").network_mut();
        net.offer(Packet {
            id: PacketId(0),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(3),
            gen_cycle: 0,
            num_flits: 8,
        });
        // Zero drain budget: must refuse, keeping the previous app.
        let err = noc.load_app("col", &routes_col(), 0).unwrap_err();
        assert_eq!(err.current_app, "row");
        assert_eq!(err.next_app, "col");
        assert_eq!(err.max_drain_cycles, 0);
        assert!(err.to_string().contains("did not drain"));
        assert_eq!(noc.current_app(), Some("row"), "previous app stays loaded");
        assert_eq!(noc.reconfig_count(), 1);
    }
}
