//! NoC configuration (Table II) and its derived quantities.

use smart_link::{CalibratedLinkModel, CircuitVariant, Gbps, LinkStyle, WireSpacing};
use smart_sim::flit::HeaderLayout;
use smart_sim::{Mesh, SimConfig, Topology, Torus};

/// The full design point of Table II, plus the link model that sets
/// `HPC_max` (the maximum hops a flit may traverse per cycle).
#[derive(Debug, Clone)]
pub struct NocConfig {
    /// Fabric shape and dimensions (Table II: 4×4 mesh).
    pub topology: Topology,
    /// Supply voltage, volts (0.9 V).
    pub vdd: f64,
    /// Clock frequency, GHz (2 GHz).
    pub clock_ghz: f64,
    /// Data channel width in bits (32).
    pub channel_bits: u32,
    /// Credit network width in bits (2: log2(VCs) + valid).
    pub credit_bits: u32,
    /// Router ports (5).
    pub router_ports: u32,
    /// VCs per port (2).
    pub vcs_per_port: usize,
    /// Buffer depth per VC in flits (10).
    pub vc_depth: usize,
    /// Packet size in bits (256).
    pub packet_bits: u32,
    /// Flit size in bits (= channel width, 32).
    pub flit_bits: u32,
    /// Hop pitch in mm (1 mm cores).
    pub hop_mm: f64,
    /// Maximum hops traversable in one cycle, from the link model.
    pub hpc_max: usize,
    /// Row-band shards the cycle engine runs on (1 = serial). Sharding
    /// is an execution strategy, not a design point: results are
    /// bit-identical for every value.
    pub shards: usize,
}

impl NocConfig {
    /// Table II: 45 nm, 0.9 V, 2 GHz, 4×4 mesh, 32-bit channels, 2-bit
    /// credit network, 5-port routers, 2 VCs × 10 flits, 256-bit packets
    /// — with `HPC_max = 8` from the low-swing link re-optimized for
    /// 2 GHz (Table I).
    #[must_use]
    pub fn paper_4x4() -> Self {
        let link = CalibratedLinkModel::new(
            LinkStyle::LowSwing,
            CircuitVariant::Resized2GHz,
            WireSpacing::Double,
        );
        let clock_ghz = 2.0;
        NocConfig {
            topology: Topology::Mesh(Mesh::paper_4x4()),
            vdd: 0.9,
            clock_ghz,
            channel_bits: 32,
            credit_bits: 2,
            router_ports: 5,
            vcs_per_port: 2,
            vc_depth: 10,
            packet_bits: 256,
            flit_bits: 32,
            hop_mm: 1.0,
            hpc_max: link.max_hops_per_cycle(Gbps(clock_ghz)) as usize,
            shards: 1,
        }
    }

    /// This design point with the cycle engine split across `n`
    /// row-band shards (clamped to the fabric height at build time).
    /// Purely an execution strategy: results are bit-identical to the
    /// serial engine.
    #[must_use]
    pub fn sharded(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The shard plan derived from this configuration.
    #[must_use]
    pub fn shard_plan(&self) -> smart_sim::ShardPlan {
        if self.shards <= 1 {
            smart_sim::ShardPlan::serial()
        } else {
            smart_sim::ShardPlan::banded(self.shards)
        }
    }

    /// Same design point on a larger `k × k` mesh (for ablations).
    #[must_use]
    pub fn scaled(k: u16) -> Self {
        NocConfig {
            topology: Topology::Mesh(Mesh::new(k, k)),
            ..NocConfig::paper_4x4()
        }
    }

    /// Same design point on a `k × k` torus: every row and column closes
    /// into a ring, so wrap links let SMART bypass cross the die seam in
    /// the same single cycle as any other `HPC_max`-hop stretch.
    #[must_use]
    pub fn scaled_torus(k: u16) -> Self {
        NocConfig {
            topology: Topology::Torus(Torus::new(k, k)),
            ..NocConfig::paper_4x4()
        }
    }

    /// This design point on an explicit topology (mesh or torus).
    #[must_use]
    pub fn with_topology(topo: impl Into<Topology>) -> Self {
        NocConfig {
            topology: topo.into(),
            ..NocConfig::paper_4x4()
        }
    }

    /// Flits per packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet size is not a multiple of the flit size.
    #[must_use]
    pub fn flits_per_packet(&self) -> u8 {
        assert_eq!(
            self.packet_bits % self.flit_bits,
            0,
            "packet must be a whole number of flits"
        );
        (self.packet_bits / self.flit_bits) as u8
    }

    /// The simulator sizing derived from this configuration.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            topology: self.topology,
            vcs_per_port: self.vcs_per_port,
            vc_depth: self.vc_depth,
            flits_per_packet: self.flits_per_packet(),
        }
    }

    /// Header layout for this configuration (Table II: 20-bit head,
    /// 4-bit body/tail).
    #[must_use]
    pub fn header_layout(&self) -> HeaderLayout {
        HeaderLayout::for_config(self.topology, self.vcs_per_port)
    }

    /// Per-wire data rate at one bit per cycle.
    #[must_use]
    pub fn wire_rate(&self) -> Gbps {
        Gbps(self.clock_ghz)
    }

    /// Convert a flow bandwidth in MB/s to packets per cycle at this
    /// design point.
    #[must_use]
    pub fn packets_per_cycle(&self, bandwidth_mbs: f64) -> f64 {
        smart_sim::mbps_to_packet_rate(
            bandwidth_mbs,
            self.flit_bits / 8,
            self.flits_per_packet(),
            self.clock_ghz,
        )
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper_4x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = NocConfig::paper_4x4();
        assert_eq!(c.topology.len(), 16);
        assert_eq!(c.channel_bits, 32);
        assert_eq!(c.credit_bits, 2);
        assert_eq!(c.vcs_per_port, 2);
        assert_eq!(c.vc_depth, 10);
        assert_eq!(c.flits_per_packet(), 8);
        assert!((c.vdd - 0.9).abs() < 1e-12);
        assert!((c.clock_ghz - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hpc_max_is_eight_at_2ghz() {
        // The paper's headline: 8 hops (8 mm) per cycle at 2 GHz.
        assert_eq!(NocConfig::paper_4x4().hpc_max, 8);
    }

    #[test]
    fn credit_width_is_log_vcs_plus_valid() {
        let c = NocConfig::paper_4x4();
        let expected = smart_sim::flit::bits_for(c.vcs_per_port) + 1;
        assert_eq!(c.credit_bits as usize, expected);
    }

    #[test]
    fn header_fits_paper_budget() {
        let l = NocConfig::paper_4x4().header_layout();
        assert!(l.head_bits() <= 20);
        assert_eq!(l.body_bits(), 4);
    }

    #[test]
    fn bandwidth_conversion() {
        let c = NocConfig::paper_4x4();
        // 500 MB/s -> 1/128 packets/cycle (see smart-sim traffic tests).
        assert!((c.packets_per_cycle(500.0) - 1.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_mesh_keeps_design_point() {
        let c = NocConfig::scaled(8);
        assert_eq!(c.topology.len(), 64);
        assert_eq!(c.hpc_max, 8);
        assert_eq!(c.flits_per_packet(), 8);
    }

    #[test]
    fn scaled_torus_keeps_design_point_with_narrower_header() {
        let c = NocConfig::scaled_torus(8);
        assert_eq!(c.topology.len(), 64);
        assert!(c.topology.is_torus());
        assert_eq!(c.hpc_max, 8);
        // Wrap links halve the diameter: 8 route hops max instead of 14,
        // so the torus head flit needs fewer route bits than the mesh.
        let mesh_bits = NocConfig::scaled(8).header_layout().route_bits;
        assert!(c.header_layout().route_bits < mesh_bits);
    }
}
