//! The three evaluated designs behind one interface: **Mesh** (3-cycle
//! router + 1-cycle link, no reconfiguration), **SMART** (preset
//! single-cycle multi-hop bypass), and **Dedicated** (ideal per-flow
//! 1-cycle links).

use crate::compile::{compile, CompiledApp};
use crate::config::NocConfig;
use crate::dedicated::{DedicatedFlow, DedicatedNoc};
use crate::preset::MeshPresets;
use smart_sim::counters::ActivityCounters;
use smart_sim::stats::SimStats;
use smart_sim::traffic::TrafficSource;
use smart_sim::{Engine, FlowId, FlowTable, Packet, SourceRoute, TelemetryConfig, TelemetrySeries};

/// Which of the paper's three designs (Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignKind {
    /// State-of-the-art mesh: 3 cycles per router, 1 cycle per link.
    Mesh,
    /// The SMART NoC with preset bypass paths.
    Smart,
    /// Ideal dedicated 1-cycle links per flow (area-unbounded yardstick).
    Dedicated,
}

impl DesignKind {
    /// All three, in the paper's presentation order.
    pub const ALL: [DesignKind; 3] = [DesignKind::Mesh, DesignKind::Smart, DesignKind::Dedicated];

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::Mesh => "Mesh",
            DesignKind::Smart => "SMART",
            DesignKind::Dedicated => "Dedicated",
        }
    }
}

/// A SMART NoC instance configured for one application.
#[derive(Debug)]
pub struct SmartNoc {
    app: CompiledApp,
    net: Engine,
}

impl SmartNoc {
    /// Compile `routes` and bring up the network with presets applied.
    #[must_use]
    pub fn new(cfg: &NocConfig, routes: &[(FlowId, SourceRoute)]) -> Self {
        SmartNoc::from_compiled(cfg, compile(cfg.topology, cfg.hpc_max, routes))
    }

    /// Bring up the network from an already-compiled application —
    /// `compile` is a pure function of `(mesh, hpc_max, routes)`, so
    /// reusing a cached [`CompiledApp`] produces a network bit-identical
    /// to [`SmartNoc::new`] while skipping the compilation entirely
    /// (the `smart-server` compiled-design cache's fast path).
    #[must_use]
    pub fn from_compiled(cfg: &NocConfig, app: CompiledApp) -> Self {
        let net = Engine::new(cfg.sim_config(), app.flows.clone(), cfg.shard_plan());
        SmartNoc { app, net }
    }

    /// The compiled application (stops, presets, plans).
    #[must_use]
    pub fn compiled(&self) -> &CompiledApp {
        &self.app
    }

    /// The router presets in force.
    #[must_use]
    pub fn presets(&self) -> &MeshPresets {
        &self.app.presets
    }

    /// The underlying cycle-accurate engine (serial or sharded).
    #[must_use]
    pub fn network(&self) -> &Engine {
        &self.net
    }

    /// Mutable access to the underlying engine.
    pub fn network_mut(&mut self) -> &mut Engine {
        &mut self.net
    }
}

/// The baseline mesh for the same routed flows.
#[derive(Debug)]
pub struct MeshNoc {
    net: Engine,
}

impl MeshNoc {
    /// Bring up the baseline (every router stops; ST and LT separate).
    #[must_use]
    pub fn new(cfg: &NocConfig, routes: &[(FlowId, SourceRoute)]) -> Self {
        MeshNoc::from_table(cfg, FlowTable::mesh_baseline(cfg.topology, routes))
    }

    /// Bring up the baseline from an already-built flow table (the
    /// cached-artifact fast path mirroring [`SmartNoc::from_compiled`]).
    #[must_use]
    pub fn from_table(cfg: &NocConfig, flows: FlowTable) -> Self {
        MeshNoc {
            net: Engine::new(cfg.sim_config(), flows, cfg.shard_plan()),
        }
    }

    /// The underlying cycle-accurate engine (serial or sharded).
    #[must_use]
    pub fn network(&self) -> &Engine {
        &self.net
    }

    /// Mutable access to the underlying engine.
    pub fn network_mut(&mut self) -> &mut Engine {
        &mut self.net
    }
}

/// Any of the three designs, ready to simulate.
#[derive(Debug)]
pub enum Design {
    /// Baseline mesh.
    Mesh(MeshNoc),
    /// SMART.
    Smart(SmartNoc),
    /// Dedicated ideal.
    Dedicated(DedicatedNoc),
}

impl Design {
    /// Build `kind` for the given routed flows. The Dedicated design
    /// ignores the route shapes and wires src→dst directly.
    #[must_use]
    pub fn build(kind: DesignKind, cfg: &NocConfig, routes: &[(FlowId, SourceRoute)]) -> Self {
        match kind {
            DesignKind::Mesh => Design::Mesh(MeshNoc::new(cfg, routes)),
            DesignKind::Smart => Design::Smart(SmartNoc::new(cfg, routes)),
            DesignKind::Dedicated => {
                let flows: Vec<DedicatedFlow> = routes
                    .iter()
                    .map(|(f, r)| DedicatedFlow {
                        flow: *f,
                        src: r.source(),
                        dst: r.destination(cfg.topology),
                    })
                    .collect();
                Design::Dedicated(DedicatedNoc::new(cfg, &flows))
            }
        }
    }

    /// Which design this is.
    #[must_use]
    pub fn kind(&self) -> DesignKind {
        match self {
            Design::Mesh(_) => DesignKind::Mesh,
            Design::Smart(_) => DesignKind::Smart,
            Design::Dedicated(_) => DesignKind::Dedicated,
        }
    }

    /// Queue a packet at its source.
    pub fn offer(&mut self, packet: Packet) {
        match self {
            Design::Mesh(m) => m.net.offer(packet),
            Design::Smart(s) => s.net.offer(packet),
            Design::Dedicated(d) => d.offer(packet),
        }
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        match self {
            Design::Mesh(m) => m.net.step(),
            Design::Smart(s) => s.net.step(),
            Design::Dedicated(d) => d.step(),
        }
    }

    /// Run `cycles` cycles with `traffic`.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        match self {
            Design::Mesh(m) => m.net.run_with(traffic, cycles),
            Design::Smart(s) => s.net.run_with(traffic, cycles),
            Design::Dedicated(d) => d.run_with(traffic, cycles),
        }
    }

    /// Step until quiescent (≤ `max_cycles`); `true` on success.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        match self {
            Design::Mesh(m) => m.net.drain(max_cycles),
            Design::Smart(s) => s.net.drain(max_cycles),
            Design::Dedicated(d) => d.drain(max_cycles),
        }
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match self {
            Design::Mesh(m) => m.net.stats(),
            Design::Smart(s) => s.net.stats(),
            Design::Dedicated(d) => d.stats(),
        }
    }

    /// Activity counters.
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        match self {
            Design::Mesh(m) => m.net.counters(),
            Design::Smart(s) => s.net.counters(),
            Design::Dedicated(d) => d.counters(),
        }
    }

    /// Exclude warm-up packets (generated before `cycle`) from stats.
    pub fn set_stats_from(&mut self, cycle: u64) {
        match self {
            Design::Mesh(m) => m.net.set_stats_from(cycle),
            Design::Smart(s) => s.net.set_stats_from(cycle),
            Design::Dedicated(d) => d.set_stats_from(cycle),
        }
    }

    /// Zero the activity counters (end of warm-up).
    pub fn reset_counters(&mut self) {
        match self {
            Design::Mesh(m) => m.net.reset_counters(),
            Design::Smart(s) => s.net.reset_counters(),
            Design::Dedicated(d) => d.reset_counters(),
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            Design::Mesh(m) => m.net.cycle(),
            Design::Smart(s) => s.net.cycle(),
            Design::Dedicated(d) => d.cycle(),
        }
    }

    /// Start collecting windowed telemetry on the underlying cycle
    /// engine. The Dedicated yardstick has no routers, links, or SSRs to
    /// observe, so it ignores the request (and [`Design::take_telemetry`]
    /// returns `None`).
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        match self {
            Design::Mesh(m) => m.net.set_telemetry(cfg),
            Design::Smart(s) => s.net.set_telemetry(cfg),
            Design::Dedicated(_) => {}
        }
    }

    /// Detach the telemetry series, if telemetry was enabled.
    pub fn take_telemetry(&mut self) -> Option<TelemetrySeries> {
        match self {
            Design::Mesh(m) => m.net.take_telemetry(),
            Design::Smart(s) => s.net.take_telemetry(),
            Design::Dedicated(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::{Mesh, NodeId, PacketId};

    fn cfg() -> NocConfig {
        NocConfig::paper_4x4()
    }

    fn routes() -> Vec<(FlowId, SourceRoute)> {
        let m = Mesh::paper_4x4();
        vec![
            (FlowId(0), SourceRoute::xy(m, NodeId(0), NodeId(3)).unwrap()),
            (
                FlowId(1),
                SourceRoute::xy(m, NodeId(12), NodeId(15)).unwrap(),
            ),
        ]
    }

    fn one_packet(flow: u32, src: u16, dst: u16) -> Packet {
        Packet {
            id: PacketId(1),
            flow: FlowId(flow),
            src: NodeId(src),
            dst: NodeId(dst),
            gen_cycle: 0,
            num_flits: 8,
        }
    }

    #[test]
    fn smart_beats_mesh_beats_nobody_at_zero_load() {
        // Non-conflicting flows: SMART = 1 cycle, Mesh = 4H + 4,
        // Dedicated = 1 cycle.
        let cfg = cfg();
        let mut lat = std::collections::HashMap::new();
        for kind in DesignKind::ALL {
            let mut d = Design::build(kind, &cfg, &routes());
            d.offer(one_packet(0, 0, 3));
            d.drain(500);
            lat.insert(kind, d.stats().avg_network_latency());
        }
        assert_eq!(lat[&DesignKind::Smart], 1.0);
        assert_eq!(lat[&DesignKind::Dedicated], 1.0);
        assert_eq!(lat[&DesignKind::Mesh], 16.0, "3 hops: 4·3+4");
    }

    #[test]
    fn smart_single_cycle_multi_hop_delivery() {
        let cfg = cfg();
        let mut s = SmartNoc::new(&cfg, &routes());
        s.network_mut().offer(one_packet(0, 0, 3));
        s.network_mut().drain(100);
        let st = s.network().stats();
        assert_eq!(st.avg_network_latency(), 1.0);
        // Packet (tail) latency: 8 flits streaming = head + 7.
        assert_eq!(st.avg_packet_latency(), 8.0);
        // The compiled app reports full bypass.
        assert_eq!(s.compiled().avg_stops(), 0.0);
    }

    #[test]
    fn design_kind_labels() {
        assert_eq!(DesignKind::Mesh.label(), "Mesh");
        assert_eq!(DesignKind::Smart.label(), "SMART");
        assert_eq!(DesignKind::Dedicated.label(), "Dedicated");
    }

    #[test]
    fn smart_presets_enable_only_used_ports() {
        let cfg = cfg();
        let s = SmartNoc::new(&cfg, &routes());
        // Row 0 flow uses routers 0-3; row 3 flow uses 12-15; routers
        // 4..=11 stay idle.
        for n in 4..=11u16 {
            assert!(s.presets().router(NodeId(n)).is_idle(), "router {n}");
        }
    }
}
