//! The *Dedicated* baseline: an ideal NoC with 1-cycle dedicated links
//! between all communicating cores (Section VI).
//!
//! The paper uses this as the yardstick SMART chases: every flow gets a
//! private single-cycle wire, so there is no path contention and no
//! bandwidth limit at sources. The only serialization the paper retains
//! is at destinations: "if there are multiple traffic flows to the same
//! destination, they need to stop at a router at the destination to go
//! up serially into the NIC". We model exactly that — a flow whose sink
//! is private flies NIC-to-NIC in one cycle; flows sharing a sink stop
//! at the destination router (BW/SA/ST, +3 cycles at zero load) and are
//! round-robin-serialized into the NIC one flit per cycle.
//!
//! Power-wise the paper plots **only link power** for Dedicated (the
//! high-radix sink routers, source muxes and pipeline registers are
//! acknowledged but ignored); the activity counters here do the same:
//! flits accumulate `link_flit_mm` over the Manhattan distance of their
//! dedicated wire, and no buffer/crossbar activity is charged.

use crate::config::NocConfig;
use smart_sim::arbiter::RoundRobin;
use smart_sim::counters::ActivityCounters;
use smart_sim::stats::SimStats;
use smart_sim::traffic::TrafficSource;
use smart_sim::{FlowId, NodeId, Packet, Topology};
use std::collections::{HashMap, VecDeque};

/// One flow over a dedicated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedicatedFlow {
    /// Flow id.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// A flit in flight inside the dedicated model (we only need packet
/// bookkeeping, not routing state).
#[derive(Debug, Clone, Copy)]
struct DFlit {
    flow: FlowId,
    is_head: bool,
    is_tail: bool,
    gen_cycle: u64,
    inject_cycle: u64,
}

/// Per-flow injection state: packets queue at the source end of their
/// private wire (one wire per flow — no source serialization).
#[derive(Debug, Clone, Default)]
struct FlowTx {
    queue: VecDeque<Packet>,
    /// Remaining flits of the packet being serialized.
    in_progress: VecDeque<DFlit>,
}

/// Per-destination sink state for shared sinks: per-flow reorder-free
/// queues plus a round-robin arbiter into the NIC.
#[derive(Debug)]
struct Sink {
    /// Flows sinking here, fixed order.
    flows: Vec<FlowId>,
    /// Buffered flits per flow with their arrival cycles.
    queues: Vec<VecDeque<(DFlit, u64)>>,
    arb: RoundRobin,
    /// Switch held by a packet until its tail passes (VCT semantics).
    held: Option<usize>,
}

/// The ideal dedicated-topology NoC.
#[derive(Debug)]
pub struct DedicatedNoc {
    mesh: Topology,
    flits_per_packet: u8,
    flows: Vec<DedicatedFlow>,
    flow_index: HashMap<FlowId, usize>,
    /// Manhattan wire length per flow (for link power).
    wire_mm: Vec<f64>,
    tx: Vec<FlowTx>,
    /// Shared sinks by destination node.
    sinks: HashMap<NodeId, Sink>,
    /// Whether each flow's sink is shared.
    shared_sink: Vec<bool>,
    cycle: u64,
    counters: ActivityCounters,
    stats: SimStats,
    stats_from: u64,
    /// In-flight arrivals to shared sinks / NICs: (apply_cycle, flow, flit).
    arrivals: Vec<Vec<(usize, DFlit)>>,
}

const RING: usize = 8;

impl DedicatedNoc {
    /// Build the dedicated network for `flows` on the physical `cfg`
    /// floorplan (wire lengths are Manhattan distances between tiles).
    ///
    /// # Panics
    ///
    /// Panics on duplicate flow ids or a flow from a node to itself.
    #[must_use]
    pub fn new(cfg: &NocConfig, flows: &[DedicatedFlow]) -> Self {
        let mesh = cfg.topology;
        let mut flow_index = HashMap::new();
        let mut by_dst: HashMap<NodeId, Vec<FlowId>> = HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            assert_ne!(f.src, f.dst, "{}: src == dst", f.flow);
            let prev = flow_index.insert(f.flow, i);
            assert!(prev.is_none(), "{}: duplicate flow", f.flow);
            by_dst.entry(f.dst).or_default().push(f.flow);
        }
        let mut sinks = HashMap::new();
        let mut shared_sink = vec![false; flows.len()];
        for (dst, fs) in &by_dst {
            if fs.len() > 1 {
                for f in fs {
                    shared_sink[flow_index[f]] = true;
                }
                sinks.insert(
                    *dst,
                    Sink {
                        flows: fs.clone(),
                        queues: vec![VecDeque::new(); fs.len()],
                        arb: RoundRobin::new(fs.len()),
                        held: None,
                    },
                );
            }
        }
        let wire_mm = flows
            .iter()
            .map(|f| f64::from(mesh.distance(f.src, f.dst)) * cfg.hop_mm)
            .collect();
        DedicatedNoc {
            mesh,
            flits_per_packet: cfg.flits_per_packet(),
            flows: flows.to_vec(),
            flow_index,
            wire_mm,
            tx: vec![FlowTx::default(); flows.len()],
            sinks,
            shared_sink,
            cycle: 0,
            counters: ActivityCounters::new(),
            stats: SimStats::new(),
            stats_from: 0,
            arrivals: vec![Vec::new(); RING],
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Latency statistics.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Activity counters (link activity only, per the paper).
    #[must_use]
    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Only packets generated at or after `cycle` count toward stats.
    pub fn set_stats_from(&mut self, cycle: u64) {
        self.stats_from = cycle;
    }

    /// Zero the activity counters.
    pub fn reset_counters(&mut self) {
        self.counters = ActivityCounters::new();
    }

    /// Queue a packet at its flow's dedicated source port.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    pub fn offer(&mut self, packet: Packet) {
        let idx = *self
            .flow_index
            .get(&packet.flow)
            .unwrap_or_else(|| panic!("unknown flow {}", packet.flow));
        self.tx[idx].queue.push_back(packet);
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let c = self.cycle;
        let slot = (c % RING as u64) as usize;

        // 1. Arrivals scheduled for end of cycle c-1.
        let arrivals = std::mem::take(&mut self.arrivals[slot]);
        for (fi, flit) in arrivals {
            if self.shared_sink[fi] {
                let dst = self.flows[fi].dst;
                let sink = self.sinks.get_mut(&dst).expect("shared sink exists");
                let qi = sink
                    .flows
                    .iter()
                    .position(|f| *f == self.flows[fi].flow)
                    .expect("flow registered at its sink");
                sink.queues[qi].push_back((flit, c - 1));
            } else {
                self.deliver(fi, flit, c - 1);
            }
        }

        // 2. Injection: every flow's private wire can carry one flit per
        // cycle (no source serialization across flows).
        for fi in 0..self.flows.len() {
            let tx = &mut self.tx[fi];
            if tx.in_progress.is_empty() {
                if let Some(p) = tx.queue.pop_front() {
                    self.counters.packets_injected += 1;
                    let n = p.num_flits;
                    for s in 0..n {
                        tx.in_progress.push_back(DFlit {
                            flow: p.flow,
                            is_head: s == 0,
                            is_tail: s == n - 1,
                            gen_cycle: p.gen_cycle,
                            inject_cycle: c,
                        });
                    }
                }
            }
            if let Some(flit) = self.tx[fi].in_progress.pop_front() {
                // The dedicated wire: arrival at the end of this cycle.
                self.counters.link_flit_mm += self.wire_mm[fi];
                let apply = ((c + 1) % RING as u64) as usize;
                self.arrivals[apply].push((fi, flit));
            }
        }

        // 3. Shared sinks: BW (cycle after arrival), SA, then ST into the
        // NIC — one flit per cycle per destination, packet-granular hold.
        let mut deliveries: Vec<(usize, DFlit, u64)> = Vec::new();
        for sink in self.sinks.values_mut() {
            let eligible: Vec<bool> = sink
                .queues
                .iter()
                .map(|q| q.front().is_some_and(|(_, arr)| arr + 2 <= c))
                .collect();
            let winner = match sink.held {
                Some(h) if eligible[h] => Some(h),
                Some(_) => None,
                None => sink.arb.grant(&eligible),
            };
            let Some(w) = winner else { continue };
            let (flit, _) = sink.queues[w].pop_front().expect("eligible has front");
            sink.held = if flit.is_tail { None } else { Some(w) };
            let fi = self.flow_index[&sink.flows[w]];
            // ST during c+1; NIC arrival end of c+1.
            deliveries.push((fi, flit, c + 1));
        }
        for (fi, flit, when) in deliveries {
            self.deliver(fi, flit, when);
        }

        self.counters.cycles += 1;
        self.cycle += 1;
    }

    /// Record a flit reaching its destination NIC at the end of
    /// `arrival_cycle`.
    fn deliver(&mut self, fi: usize, flit: DFlit, arrival_cycle: u64) {
        self.counters.flits_delivered += 1;
        let measured = flit.gen_cycle >= self.stats_from;
        if flit.is_head && measured {
            let lat = arrival_cycle - flit.inject_cycle + 1;
            self.stats
                .record_head(flit.flow, lat, flit.inject_cycle - flit.gen_cycle);
        }
        if flit.is_tail {
            self.counters.packets_delivered += 1;
            if measured {
                let lat = arrival_cycle - flit.inject_cycle + 1;
                self.stats.record_tail(flit.flow, lat);
            }
        }
        let _ = fi;
    }

    /// Run `cycles` cycles pulling from `traffic`.
    pub fn run_with(&mut self, traffic: &mut dyn TrafficSource, cycles: u64) {
        for _ in 0..cycles {
            for p in traffic.generate(self.cycle) {
                self.offer(p);
            }
            self.step();
        }
    }

    /// `true` when nothing is queued or in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.tx
            .iter()
            .all(|t| t.queue.is_empty() && t.in_progress.is_empty())
            && self.arrivals.iter().all(Vec::is_empty)
            && self
                .sinks
                .values()
                .all(|s| s.queues.iter().all(VecDeque::is_empty))
    }

    /// Step until quiescent (up to `max_cycles`); `true` on success.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.is_quiescent() {
                return true;
            }
            self.step();
        }
        self.is_quiescent()
    }

    /// The topology/floorplan underneath (for reporting).
    #[must_use]
    pub fn mesh(&self) -> Topology {
        self.mesh
    }

    /// Flits per packet.
    #[must_use]
    pub fn flits_per_packet(&self) -> u8 {
        self.flits_per_packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::PacketId;

    fn cfg() -> NocConfig {
        NocConfig::paper_4x4()
    }

    fn packet(flow: u32, src: u16, dst: u16, gen: u64) -> Packet {
        Packet {
            id: PacketId(u64::from(flow) * 1000 + gen),
            flow: FlowId(flow),
            src: NodeId(src),
            dst: NodeId(dst),
            gen_cycle: gen,
            num_flits: 8,
        }
    }

    #[test]
    fn private_sink_is_single_cycle() {
        let flows = [DedicatedFlow {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(15),
        }];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        noc.offer(packet(0, 0, 15, 0));
        noc.drain(100);
        let s = noc.stats().flow(FlowId(0)).expect("delivered");
        assert_eq!(s.avg_head_latency(), 1.0, "dedicated wire = 1 cycle");
        // Tail follows 7 cycles later.
        assert_eq!(s.avg_packet_latency(), 8.0);
    }

    #[test]
    fn shared_sink_costs_a_stop() {
        let flows = [
            DedicatedFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(5),
            },
            DedicatedFlow {
                flow: FlowId(1),
                src: NodeId(10),
                dst: NodeId(5),
            },
        ];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        // Only one packet in the system: still pays the sink pipeline.
        noc.offer(packet(0, 0, 5, 0));
        noc.drain(100);
        let s = noc.stats().flow(FlowId(0)).expect("delivered");
        assert_eq!(
            s.avg_head_latency(),
            4.0,
            "sink stop adds BW+SA+ST = 3 cycles"
        );
    }

    #[test]
    fn contending_sinks_serialize() {
        let flows = [
            DedicatedFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(5),
            },
            DedicatedFlow {
                flow: FlowId(1),
                src: NodeId(10),
                dst: NodeId(5),
            },
        ];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        noc.offer(packet(0, 0, 5, 0));
        noc.offer(packet(1, 10, 5, 0));
        noc.drain(200);
        let s0 = noc.stats().flow(FlowId(0)).expect("f0");
        let s1 = noc.stats().flow(FlowId(1)).expect("f1");
        // One of the packets waits for the other's 8 flits to clear.
        let (fast, slow) = if s0.avg_head_latency() < s1.avg_head_latency() {
            (s0, s1)
        } else {
            (s1, s0)
        };
        assert_eq!(fast.avg_head_latency(), 4.0);
        assert!(
            slow.avg_head_latency() >= 11.0,
            "loser head waits out the winner's packet, got {}",
            slow.avg_head_latency()
        );
        assert_eq!(noc.counters().packets_delivered, 2);
    }

    #[test]
    fn no_source_serialization_across_flows() {
        // Two flows from the SAME source to private sinks: both heads
        // arrive in 1 cycle (parallel dedicated wires).
        let flows = [
            DedicatedFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(3),
            },
            DedicatedFlow {
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(12),
            },
        ];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        noc.offer(packet(0, 0, 3, 0));
        noc.offer(packet(1, 0, 12, 0));
        noc.drain(100);
        assert_eq!(
            noc.stats().flow(FlowId(0)).expect("f0").avg_head_latency(),
            1.0
        );
        assert_eq!(
            noc.stats().flow(FlowId(1)).expect("f1").avg_head_latency(),
            1.0
        );
    }

    #[test]
    fn only_link_activity_is_counted() {
        let flows = [DedicatedFlow {
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(15),
        }];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        noc.offer(packet(0, 0, 15, 0));
        noc.drain(100);
        let c = noc.counters();
        // 8 flits × 6 mm Manhattan wire.
        assert!((c.link_flit_mm - 48.0).abs() < 1e-9);
        assert_eq!(c.buffer_writes, 0);
        assert_eq!(c.xbar_flit_traversals, 0);
        assert_eq!(c.sa_grants, 0);
    }

    #[test]
    fn flit_conservation() {
        let flows = [
            DedicatedFlow {
                flow: FlowId(0),
                src: NodeId(1),
                dst: NodeId(14),
            },
            DedicatedFlow {
                flow: FlowId(1),
                src: NodeId(2),
                dst: NodeId(14),
            },
        ];
        let mut noc = DedicatedNoc::new(&cfg(), &flows);
        for g in 0..10 {
            noc.offer(packet(0, 1, 14, g));
            noc.offer(packet(1, 2, 14, g));
        }
        assert!(noc.drain(5000));
        assert_eq!(noc.counters().packets_delivered, 20);
        assert_eq!(noc.counters().flits_delivered, 160);
    }
}
