//! Static analysis of a compiled application: zero-load latencies, link
//! utilization, and bandwidth feasibility — the checks a SMART tool
//! flow runs before committing presets to the configuration registers.

use crate::compile::CompiledApp;
use smart_sim::{FlowId, LinkId, Topology};
use std::collections::BTreeMap;
use std::fmt;

/// Per-flow static figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowFigures {
    /// Route length, links.
    pub hops: usize,
    /// Stop routers along the way.
    pub stops: usize,
    /// Zero-load head latency, cycles (`1 + 3·stops`).
    pub zero_load_latency: u64,
    /// The baseline mesh's zero-load latency for the same route
    /// (`4·hops + 4`), for the per-flow speedup column.
    pub mesh_latency: u64,
}

impl FlowFigures {
    /// Zero-load speedup over the baseline mesh.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.mesh_latency as f64 / self.zero_load_latency as f64
    }
}

/// Utilization of one link under given flow rates.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// The link.
    pub link: LinkId,
    /// Flows crossing it.
    pub flows: Vec<FlowId>,
    /// Offered load in flits per cycle.
    pub flits_per_cycle: f64,
}

/// The full static report for a compiled application.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Per-flow figures, by flow id.
    pub flows: BTreeMap<FlowId, FlowFigures>,
    /// Per-link utilization, densest first.
    pub links: Vec<LinkUtilization>,
}

impl AnalysisReport {
    /// Zero-load average latency (unweighted across flows).
    #[must_use]
    pub fn avg_zero_load_latency(&self) -> f64 {
        if self.flows.is_empty() {
            return f64::NAN;
        }
        let sum: u64 = self.flows.values().map(|f| f.zero_load_latency).sum();
        sum as f64 / self.flows.len() as f64
    }

    /// The most loaded link, if any flow crosses a link.
    #[must_use]
    pub fn hottest_link(&self) -> Option<&LinkUtilization> {
        self.links.first()
    }

    /// Links offered more than one flit per cycle — infeasible load the
    /// open-loop traffic model would backlog indefinitely.
    #[must_use]
    pub fn oversubscribed(&self) -> Vec<&LinkUtilization> {
        self.links
            .iter()
            .filter(|l| l.flits_per_cycle > 1.0)
            .collect()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>5} {:>6} {:>10} {:>10} {:>9}",
            "flow", "hops", "stops", "SMART lat", "Mesh lat", "speedup"
        )?;
        for (flow, fig) in &self.flows {
            writeln!(
                f,
                "{:<6} {:>5} {:>6} {:>10} {:>10} {:>8.1}x",
                flow.to_string(),
                fig.hops,
                fig.stops,
                fig.zero_load_latency,
                fig.mesh_latency,
                fig.speedup()
            )?;
        }
        writeln!(f, "hottest links (flits/cycle):")?;
        for l in self.links.iter().take(5) {
            writeln!(
                f,
                "  {:<8} {:>6.3}  ({} flows)",
                l.link.to_string(),
                l.flits_per_cycle,
                l.flows.len()
            )?;
        }
        Ok(())
    }
}

/// Analyze `app` under per-flow packet rates (`packets/cycle`), with
/// `flits_per_packet` flits each.
///
/// # Panics
///
/// Panics if a rate references an unknown flow.
#[must_use]
pub fn analyze(
    topo: impl Into<Topology>,
    app: &CompiledApp,
    rates: &[(FlowId, f64)],
    flits_per_packet: u8,
) -> AnalysisReport {
    let mesh = topo.into();
    let mut flows = BTreeMap::new();
    let mut per_link: BTreeMap<LinkId, (Vec<FlowId>, f64)> = BTreeMap::new();
    let rate_of: BTreeMap<FlowId, f64> = rates.iter().copied().collect();
    for plan in app.flows.iter() {
        let hops = plan.route.num_hops();
        let stops = app.stops[&plan.flow].len();
        flows.insert(
            plan.flow,
            FlowFigures {
                hops,
                stops,
                zero_load_latency: plan.zero_load_latency(),
                mesh_latency: 4 * hops as u64 + 4,
            },
        );
        let flits = rate_of
            .get(&plan.flow)
            .copied()
            .unwrap_or_else(|| panic!("no rate for {}", plan.flow))
            * f64::from(flits_per_packet);
        for link in plan.route.links(mesh) {
            let e = per_link.entry(link).or_default();
            e.0.push(plan.flow);
            e.1 += flits;
        }
    }
    let mut links: Vec<LinkUtilization> = per_link
        .into_iter()
        .map(|(link, (flows, flits_per_cycle))| LinkUtilization {
            link,
            flows,
            flits_per_cycle,
        })
        .collect();
    links.sort_by(|a, b| {
        b.flits_per_cycle
            .partial_cmp(&a.flits_per_cycle)
            .expect("finite loads")
            .then(a.link.cmp(&b.link))
    });
    AnalysisReport { flows, links }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use smart_sim::{NodeId, SourceRoute};

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    fn two_flow_app() -> (CompiledApp, Vec<(FlowId, f64)>) {
        let routes = vec![
            (
                FlowId(0),
                SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap(),
            ),
            (
                FlowId(1),
                SourceRoute::xy(mesh(), NodeId(4), NodeId(7)).unwrap(),
            ),
        ];
        let app = compile(mesh(), 8, &routes);
        let rates = vec![(FlowId(0), 0.01), (FlowId(1), 0.02)];
        (app, rates)
    }

    #[test]
    fn figures_match_compiler_outputs() {
        let (app, rates) = two_flow_app();
        let rep = analyze(mesh(), &app, &rates, 8);
        let f0 = rep.flows[&FlowId(0)];
        assert_eq!(f0.hops, 3);
        assert_eq!(f0.stops, 0);
        assert_eq!(f0.zero_load_latency, 1);
        assert_eq!(f0.mesh_latency, 16);
        assert!((f0.speedup() - 16.0).abs() < 1e-12);
        assert_eq!(rep.avg_zero_load_latency(), 1.0);
    }

    #[test]
    fn link_loads_accumulate() {
        let (app, rates) = two_flow_app();
        let rep = analyze(mesh(), &app, &rates, 8);
        // Flow 1 at 0.02 packets/cycle × 8 flits = 0.16 flits/cycle on
        // each of its 3 links.
        let hot = rep.hottest_link().expect("links exist");
        assert!((hot.flits_per_cycle - 0.16).abs() < 1e-12);
        assert_eq!(hot.flows, vec![FlowId(1)]);
        assert!(rep.oversubscribed().is_empty());
    }

    #[test]
    fn oversubscription_detected() {
        let routes = vec![(
            FlowId(0),
            SourceRoute::xy(mesh(), NodeId(0), NodeId(1)).unwrap(),
        )];
        let app = compile(mesh(), 8, &routes);
        let rep = analyze(mesh(), &app, &[(FlowId(0), 0.2)], 8);
        // 0.2 × 8 = 1.6 flits/cycle > link capacity.
        assert_eq!(rep.oversubscribed().len(), 1);
    }

    #[test]
    fn display_renders_rows() {
        let (app, rates) = two_flow_app();
        let rep = analyze(mesh(), &app, &rates, 8).to_string();
        assert!(rep.contains("f0"));
        assert!(rep.contains("speedup"));
        assert!(rep.contains("hottest links"));
    }
}
