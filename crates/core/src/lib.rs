//! # smart-core — the SMART NoC architecture (DATE 2013)
//!
//! The paper's primary contribution: a mesh NoC whose crossbars embed
//! clockless repeated links (`smart-link`) and whose bypass muxes,
//! crossbar selects and credit crossbars are **preset per application**
//! so flits traverse multiple hops — potentially source NIC to
//! destination NIC — in a single clock cycle.
//!
//! * [`config::NocConfig`] — the Table II design point (4×4, 2 GHz,
//!   32-bit flits, 2 VCs × 10, `HPC_max = 8`).
//! * [`compile::compile`] — the preset compiler: routed flows → stop
//!   sets → single-cycle segments + router presets.
//! * [`preset`] — preset state and the double-word configuration
//!   registers (Section V).
//! * [`noc::Design`] — the three evaluated designs (Mesh / SMART /
//!   Dedicated) behind one interface.
//! * [`reconfig::ReconfigurableNoc`] — drain + store-sequence
//!   application switching (Fig 1).
//!
//! ```
//! use smart_core::config::NocConfig;
//! use smart_core::noc::SmartNoc;
//! use smart_sim::{FlowId, NodeId, Packet, PacketId, SourceRoute};
//!
//! let cfg = NocConfig::paper_4x4();
//! let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(3)).unwrap();
//! let mut noc = SmartNoc::new(&cfg, &[(FlowId(0), route)]);
//! noc.network_mut().offer(Packet {
//!     id: PacketId(0),
//!     flow: FlowId(0),
//!     src: NodeId(0),
//!     dst: NodeId(3),
//!     gen_cycle: 0,
//!     num_flits: 8,
//! });
//! noc.network_mut().drain(100);
//! // Three hops, zero conflicts: the head flit arrives in ONE cycle.
//! assert_eq!(noc.network().stats().avg_network_latency(), 1.0);
//! ```

pub mod analysis;
pub mod compile;
pub mod config;
pub mod dedicated;
pub mod noc;
pub mod preset;
pub mod reconfig;
pub mod scenarios;
pub mod viz;

pub use analysis::{analyze, AnalysisReport, FlowFigures, LinkUtilization};
pub use compile::{compile, CompiledApp};
pub use config::NocConfig;
pub use dedicated::{DedicatedFlow, DedicatedNoc};
pub use noc::{Design, DesignKind, MeshNoc, SmartNoc};
pub use preset::{InputMux, MeshPresets, RouterPreset, StoreOp, XbarSelect};
pub use reconfig::{ReconfigReport, ReconfigurableNoc};
pub use viz::{render_topology, topology_summary};
