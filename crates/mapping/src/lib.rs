//! Task mapping and routing for the SMART NoC (DATE 2013, Section VI).
//!
//! Pipeline: a [`smart_taskgraph::TaskGraph`] is placed onto the mesh by
//! the paper's modified [`nmap`] heuristic, its flows are routed by
//! contention-aware minimal [`routes`] (verified deadlock-free by
//! [`deadlock`]), and the result feeds `smart_core::compile` to produce
//! presets. [`MappedApp`] bundles the whole thing per application.
//!
//! ```
//! use smart_mapping::MappedApp;
//! use smart_core::config::NocConfig;
//! use smart_taskgraph::apps;
//!
//! let cfg = NocConfig::paper_4x4();
//! let app = MappedApp::from_graph(&cfg, &apps::vopd());
//! assert_eq!(app.routes.len(), apps::vopd().flows().len());
//! // Injection rates are packets/cycle, ready for Bernoulli traffic.
//! assert!(app.rates.iter().all(|(_, r)| *r > 0.0 && *r < 1.0));
//! ```

pub mod deadlock;
pub mod nmap;
pub mod routes;

pub use deadlock::{check, DeadlockCheck};
pub use nmap::{place, place_and_route, place_random, routable_flows, Placement};
pub use routes::{
    candidates, detour_candidates, select_routes, select_routes_with, yx, RoutableFlow,
    RouteOptions,
};

use smart_core::config::NocConfig;
use smart_sim::{FlowId, SourceRoute};
use smart_taskgraph::TaskGraph;

/// A fully mapped application: placement, routes and injection rates.
#[derive(Debug, Clone)]
pub struct MappedApp {
    /// Application name.
    pub name: String,
    /// Task placement.
    pub placement: Placement,
    /// One route per task-graph flow (`FlowId` = flow index).
    pub routes: Vec<(FlowId, SourceRoute)>,
    /// Per-flow injection rates in packets per cycle at the
    /// configuration's clock and packet size.
    pub rates: Vec<(FlowId, f64)>,
}

impl MappedApp {
    /// Map `graph` onto `cfg`'s mesh and derive injection rates.
    #[must_use]
    pub fn from_graph(cfg: &NocConfig, graph: &TaskGraph) -> Self {
        let (placement, routes) = place_and_route(cfg.topology, graph);
        MappedApp::assemble(cfg, graph, placement, routes)
    }

    /// Use a caller-supplied placement (e.g. [`place_random`] for the
    /// heterogeneous-SoC scenario) and route its flows.
    #[must_use]
    pub fn with_placement(cfg: &NocConfig, graph: &TaskGraph, placement: Placement) -> Self {
        let flows = routable_flows(graph, &placement);
        let routes = select_routes(cfg.topology, &flows);
        MappedApp::assemble(cfg, graph, placement, routes)
    }

    /// Map with an explicit routing policy (e.g.
    /// [`RouteOptions::with_detours`] for the paper's non-minimal
    /// future-work mode).
    #[must_use]
    pub fn from_graph_with_routing(cfg: &NocConfig, graph: &TaskGraph, opts: RouteOptions) -> Self {
        let placement = place(cfg.topology, graph);
        let flows = routable_flows(graph, &placement);
        let routes = select_routes_with(cfg.topology, &flows, opts);
        MappedApp::assemble(cfg, graph, placement, routes)
    }

    fn assemble(
        cfg: &NocConfig,
        graph: &TaskGraph,
        placement: Placement,
        routes: Vec<(FlowId, SourceRoute)>,
    ) -> Self {
        let rates = graph
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowId(i as u32), cfg.packets_per_cycle(f.bandwidth_mbs)))
            .collect();
        MappedApp {
            name: graph.name().to_owned(),
            placement,
            routes,
            rates,
        }
    }

    /// Aggregate offered load, packets per cycle.
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        self.rates.iter().map(|(_, r)| r).sum()
    }

    /// Average route length in hops.
    #[must_use]
    pub fn avg_hops(&self) -> f64 {
        if self.routes.is_empty() {
            return 0.0;
        }
        let total: usize = self.routes.iter().map(|(_, r)| r.num_hops()).sum();
        total as f64 / self.routes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_taskgraph::apps;

    #[test]
    fn all_apps_map_cleanly() {
        let cfg = NocConfig::paper_4x4();
        for g in apps::all() {
            let app = MappedApp::from_graph(&cfg, &g);
            assert_eq!(app.routes.len(), g.flows().len(), "{}", g.name());
            assert!(app.offered_load() > 0.0 && app.offered_load() < 0.5);
            assert!(app.avg_hops() >= 1.0);
            // Routes are deadlock-free by construction.
            let rs: Vec<SourceRoute> = app.routes.iter().map(|(_, r)| r.clone()).collect();
            assert!(deadlock::check(cfg.topology, &rs).is_free(), "{}", g.name());
        }
    }

    #[test]
    fn rates_follow_bandwidth() {
        let cfg = NocConfig::paper_4x4();
        let g = apps::vopd();
        let app = MappedApp::from_graph(&cfg, &g);
        // Flow 9 (vop_rec -> pad) is the 500 MB/s hot flow.
        let (_, hot) = app.rates[9];
        assert!((hot - cfg.packets_per_cycle(500.0)).abs() < 1e-15);
        // All rates positive.
        assert!(app.rates.iter().all(|(_, r)| *r > 0.0));
    }
}
