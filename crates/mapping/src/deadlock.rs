//! Channel-dependency-graph deadlock check.
//!
//! The paper avoids network deadlock "by enforcing a deadlock-free turn
//! model across the routes for all flows" (Section IV). We verify route
//! sets the standard way: build the channel dependency graph (one node
//! per directed link; one edge per consecutive link pair used by any
//! route) and check it is acyclic (Dally & Towles, the paper's reference \[11\]).

use smart_sim::{LinkId, SourceRoute, Topology};
use std::collections::{HashMap, HashSet};

/// Result of a deadlock check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockCheck {
    /// The channel dependency graph is acyclic.
    Free,
    /// A dependency cycle exists; one witness cycle is returned.
    Cyclic(Vec<LinkId>),
}

impl DeadlockCheck {
    /// `true` when no cycle was found.
    #[must_use]
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockCheck::Free)
    }
}

/// Check a set of routes for channel-dependency cycles. Works on any
/// topology: on a torus, wrap-around routes that close a ring show up
/// as ordinary link-dependency cycles here.
#[must_use]
pub fn check(topo: impl Into<Topology>, routes: &[SourceRoute]) -> DeadlockCheck {
    let mesh = topo.into();
    // Build adjacency: link -> links that may be waited on next.
    let mut adj: HashMap<LinkId, HashSet<LinkId>> = HashMap::new();
    for r in routes {
        let links = r.links(mesh);
        for w in links.windows(2) {
            adj.entry(w[0]).or_default().insert(w[1]);
        }
        // Make sure lone links appear as nodes too.
        for l in links {
            adj.entry(l).or_default();
        }
    }

    // Iterative DFS with colors; reconstruct a cycle on back-edge.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<LinkId, Color> = adj.keys().map(|l| (*l, Color::White)).collect();
    let mut parent: HashMap<LinkId, LinkId> = HashMap::new();
    let nodes: Vec<LinkId> = {
        let mut v: Vec<LinkId> = adj.keys().copied().collect();
        v.sort_unstable();
        v
    };
    for start in nodes {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (node, iterator index over sorted successors).
        let succs: HashMap<LinkId, Vec<LinkId>> = adj
            .iter()
            .map(|(k, v)| {
                let mut s: Vec<LinkId> = v.iter().copied().collect();
                s.sort_unstable();
                (*k, s)
            })
            .collect();
        let mut stack: Vec<(LinkId, usize)> = vec![(start, 0)];
        color.insert(start, Color::Grey);
        while let Some((node, idx)) = stack.last().copied() {
            if idx < succs[&node].len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let next = succs[&node][idx];
                match color[&next] {
                    Color::White => {
                        parent.insert(next, node);
                        color.insert(next, Color::Grey);
                        stack.push((next, 0));
                    }
                    Color::Grey => {
                        // Back edge: reconstruct node -> ... -> next.
                        let mut cycle = vec![next];
                        let mut cur = node;
                        while cur != next {
                            cycle.push(cur);
                            cur = parent[&cur];
                        }
                        cycle.reverse();
                        return DeadlockCheck::Cyclic(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    DeadlockCheck::Free
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_sim::NodeId;

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn xy_routes_are_deadlock_free() {
        // Dimension-ordered routing is provably deadlock-free; exercise
        // an all-to-all batch.
        let mut routes = Vec::new();
        for s in 0..16u16 {
            for d in 0..16u16 {
                if s != d {
                    routes.push(SourceRoute::xy(mesh(), NodeId(s), NodeId(d)).unwrap());
                }
            }
        }
        assert!(check(mesh(), &routes).is_free());
    }

    #[test]
    fn turn_cycle_is_detected() {
        // Four routes forming the classic clockwise turn cycle around
        // the 0-1-5-4 square: each takes one turn of the ring.
        let path = |p: &[u16]| {
            let nodes: Vec<NodeId> = p.iter().map(|n| NodeId(*n)).collect();
            SourceRoute::from_router_path(mesh(), &nodes)
        };
        let routes = vec![
            path(&[0, 1, 5]),
            path(&[1, 5, 4]),
            path(&[5, 4, 0]),
            path(&[4, 0, 1]),
        ];
        match check(mesh(), &routes) {
            DeadlockCheck::Cyclic(cycle) => {
                assert!(cycle.len() >= 4, "witness cycle: {cycle:?}");
            }
            DeadlockCheck::Free => panic!("the turn cycle must be detected"),
        }
    }

    #[test]
    fn empty_and_single_route_are_free() {
        assert!(check(mesh(), &[]).is_free());
        let r = SourceRoute::xy(mesh(), NodeId(0), NodeId(15)).unwrap();
        assert!(check(mesh(), &[r]).is_free());
    }

    #[test]
    fn disjoint_straight_routes_are_free() {
        let routes = vec![
            SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap(),
            SourceRoute::xy(mesh(), NodeId(15), NodeId(12)).unwrap(),
        ];
        assert!(check(mesh(), &routes).is_free());
    }
}
