//! The paper's modified NMAP placement (Section VI, *Configurations*).
//!
//! "We first map the task with highest communication demand to the core
//! with the most number of neighbors (i.e. middle of the mesh). Then,
//! we pick a task that communicates the most with the mapped tasks and
//! find an unmapped core that minimizes the chance of getting buffered
//! at intermediate cores. This process is iterated to map all tasks to
//! physical cores. As the tasks are mapped to the physical cores, the
//! flows between tasks are also mapped to routes with minimum number of
//! hops between cores."
//!
//! "Chance of getting buffered" is evaluated exactly as the SMART
//! compiler would see it: a candidate placement is scored by the
//! bandwidth-weighted link sharing the new task's flows would incur
//! against the routes committed so far (plus hop count to break ties).

use crate::routes::{candidates, route_cost, RoutableFlow};
use smart_sim::{FlowId, LinkId, NodeId, SourceRoute, Topology};
use smart_taskgraph::{TaskGraph, TaskId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A task-to-core placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    assignment: BTreeMap<TaskId, NodeId>,
}

impl Placement {
    /// Core hosting `task`.
    ///
    /// # Panics
    ///
    /// Panics if the task was never placed.
    #[must_use]
    pub fn core(&self, task: TaskId) -> NodeId {
        *self
            .assignment
            .get(&task)
            .unwrap_or_else(|| panic!("{task} was not placed"))
    }

    /// Iterate `(task, core)` pairs in task order.
    pub fn iter(&self) -> impl Iterator<Item = (&TaskId, &NodeId)> {
        self.assignment.iter()
    }

    /// Number of placed tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when nothing has been placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// Run the modified NMAP on `graph` over `mesh`.
///
/// # Panics
///
/// Panics if the graph has more tasks than the mesh has cores.
#[must_use]
pub fn place(topo: impl Into<Topology>, graph: &TaskGraph) -> Placement {
    let mesh = topo.into();
    assert!(
        graph.num_tasks() <= mesh.len(),
        "{}: {} tasks exceed {} cores",
        graph.name(),
        graph.num_tasks(),
        mesh.len()
    );

    let mut assignment: BTreeMap<TaskId, NodeId> = BTreeMap::new();
    let mut free_cores: HashSet<NodeId> = mesh.nodes().collect();
    let mut link_load: HashMap<LinkId, f64> = HashMap::new();

    // Seed: highest-demand task onto the most-connected core (ties:
    // lowest node id — deterministic).
    let seed_task = graph
        .task_ids()
        .max_by(|a, b| {
            graph
                .comm_demand(*a)
                .partial_cmp(&graph.comm_demand(*b))
                .expect("finite demand")
                .then(b.0.cmp(&a.0))
        })
        .expect("graph has tasks");
    let seed_core = mesh
        .nodes()
        .max_by_key(|n| (mesh.degree(*n), std::cmp::Reverse(n.0)))
        .expect("mesh has nodes");
    assignment.insert(seed_task, seed_core);
    free_cores.remove(&seed_core);

    while assignment.len() < graph.num_tasks() {
        // Most-communicating unmapped task w.r.t. the mapped set.
        let next_task = graph
            .task_ids()
            .filter(|t| !assignment.contains_key(t))
            .max_by(|a, b| {
                let da = mapped_demand(graph, &assignment, *a);
                let db = mapped_demand(graph, &assignment, *b);
                da.partial_cmp(&db)
                    .expect("finite demand")
                    .then(b.0.cmp(&a.0))
            })
            .expect("unmapped tasks remain");

        // The flows this task exchanges with already-placed tasks.
        let pending: Vec<(bool, TaskId, f64)> = graph
            .flows()
            .iter()
            .filter_map(|f| {
                if f.src == next_task && assignment.contains_key(&f.dst) {
                    Some((true, f.dst, f.bandwidth_mbs))
                } else if f.dst == next_task && assignment.contains_key(&f.src) {
                    Some((false, f.src, f.bandwidth_mbs))
                } else {
                    None
                }
            })
            .collect();

        // Score every free core by the buffering chance of those flows.
        let mut best: Option<(f64, NodeId)> = None;
        let mut cores: Vec<NodeId> = free_cores.iter().copied().collect();
        cores.sort_unstable();
        for core in cores {
            let mut cost = 0.0;
            for (outgoing, peer, bw) in &pending {
                let peer_core = assignment[peer];
                let (s, d) = if *outgoing {
                    (core, peer_core)
                } else {
                    (peer_core, core)
                };
                if s == d {
                    // Placing both endpoints on one tile is not allowed
                    // (one task per core); candidates exclude it anyway.
                    cost += 1e12;
                    continue;
                }
                let route_best = candidates(mesh, s, d)
                    .into_iter()
                    .map(|r| route_cost(mesh, &r, *bw, &link_load))
                    .fold(f64::INFINITY, f64::min);
                cost += route_best;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, core));
            }
        }
        let (_, core) = best.expect("free cores remain");
        assignment.insert(next_task, core);
        free_cores.remove(&core);

        // Commit routes for the newly-connected flows so later
        // placements see their load.
        for (outgoing, peer, bw) in &pending {
            let peer_core = assignment[peer];
            let (s, d) = if *outgoing {
                (core, peer_core)
            } else {
                (peer_core, core)
            };
            let route = candidates(mesh, s, d)
                .into_iter()
                .min_by(|a, b| {
                    route_cost(mesh, a, *bw, &link_load)
                        .partial_cmp(&route_cost(mesh, b, *bw, &link_load))
                        .expect("finite cost")
                })
                .expect("at least one candidate");
            for l in route.links(mesh) {
                *link_load.entry(l).or_insert(0.0) += bw;
            }
        }
    }

    Placement { assignment }
}

/// A seeded random placement — the paper's "heterogeneous SoC" remark:
/// when tasks are tied to specific cores the mapping cannot chase
/// locality, routes get longer, and SMART's multi-hop bypass matters
/// more. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if the graph has more tasks than the mesh has cores.
#[must_use]
pub fn place_random(topo: impl Into<Topology>, graph: &TaskGraph, seed: u64) -> Placement {
    let mesh = topo.into();
    assert!(
        graph.num_tasks() <= mesh.len(),
        "{}: {} tasks exceed {} cores",
        graph.name(),
        graph.num_tasks(),
        mesh.len()
    );
    // Fisher-Yates with a splitmix64 stream — no rand dependency needed.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut cores: Vec<NodeId> = mesh.nodes().collect();
    for i in (1..cores.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        cores.swap(i, j);
    }
    let assignment = graph.task_ids().zip(cores).collect();
    Placement { assignment }
}

/// Bandwidth `t` exchanges with already-mapped tasks.
fn mapped_demand(graph: &TaskGraph, assignment: &BTreeMap<TaskId, NodeId>, t: TaskId) -> f64 {
    graph
        .flows()
        .iter()
        .filter(|f| {
            (f.src == t && assignment.contains_key(&f.dst))
                || (f.dst == t && assignment.contains_key(&f.src))
        })
        .map(|f| f.bandwidth_mbs)
        .sum()
}

/// Turn a placement into routable flows (`FlowId` = index into
/// `graph.flows()`).
#[must_use]
pub fn routable_flows(graph: &TaskGraph, placement: &Placement) -> Vec<RoutableFlow> {
    graph
        .flows()
        .iter()
        .enumerate()
        .map(|(i, f)| RoutableFlow {
            flow: FlowId(i as u32),
            src: placement.core(f.src),
            dst: placement.core(f.dst),
            bandwidth_mbs: f.bandwidth_mbs,
        })
        .collect()
}

/// Convenience: place, route and return `(flow, route)` pairs plus the
/// placement.
#[must_use]
pub fn place_and_route(
    topo: impl Into<Topology>,
    graph: &TaskGraph,
) -> (Placement, Vec<(FlowId, SourceRoute)>) {
    let mesh = topo.into();
    let placement = place(mesh, graph);
    let flows = routable_flows(graph, &placement);
    let routes = crate::routes::select_routes(mesh, &flows);
    (placement, routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_taskgraph::apps;

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn placements_are_injective_and_complete() {
        for g in apps::all() {
            let p = place(mesh(), &g);
            assert_eq!(p.len(), g.num_tasks(), "{}", g.name());
            let cores: HashSet<NodeId> = p.iter().map(|(_, c)| *c).collect();
            assert_eq!(
                cores.len(),
                g.num_tasks(),
                "{}: one task per core",
                g.name()
            );
        }
    }

    #[test]
    fn seed_lands_in_the_mesh_interior() {
        // The highest-demand task must sit on a degree-4 core.
        for g in apps::all() {
            let p = place(mesh(), &g);
            let seed = g
                .task_ids()
                .max_by(|a, b| {
                    g.comm_demand(*a)
                        .partial_cmp(&g.comm_demand(*b))
                        .expect("finite")
                        .then(b.0.cmp(&a.0))
                })
                .expect("tasks");
            assert_eq!(
                mesh().degree(p.core(seed)),
                4,
                "{}: seed task should sit mid-mesh",
                g.name()
            );
        }
    }

    #[test]
    fn communicating_tasks_land_close() {
        // NMAP's whole point: average flow distance well below the mesh
        // average (~2.67 hops for random placement on a 4x4).
        for g in apps::all() {
            let p = place(mesh(), &g);
            let flows = routable_flows(&g, &p);
            let avg: f64 = flows
                .iter()
                .map(|f| f64::from(mesh().manhattan(f.src, f.dst)))
                .sum::<f64>()
                / flows.len() as f64;
            assert!(
                avg < 2.2,
                "{}: average flow distance {avg:.2} hops is not local",
                g.name()
            );
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let g = apps::vopd();
        let a = place(mesh(), &g);
        let b = place(mesh(), &g);
        assert_eq!(a, b);
    }

    #[test]
    fn place_and_route_produces_one_route_per_flow() {
        let g = apps::mwd();
        let (p, routes) = place_and_route(mesh(), &g);
        assert_eq!(routes.len(), g.flows().len());
        for (i, (fid, route)) in routes.iter().enumerate() {
            assert_eq!(fid.0 as usize, i);
            let f = &g.flows()[i];
            assert_eq!(route.source(), p.core(f.src));
            assert_eq!(route.destination(mesh()), p.core(f.dst));
        }
    }

    #[test]
    fn random_placement_is_injective_and_seeded() {
        let g = apps::vopd();
        let a = place_random(mesh(), &g, 7);
        let b = place_random(mesh(), &g, 7);
        let c = place_random(mesh(), &g, 8);
        assert_eq!(a, b, "same seed, same placement");
        assert_ne!(a, c, "different seeds should differ");
        let cores: HashSet<NodeId> = a.iter().map(|(_, n)| *n).collect();
        assert_eq!(cores.len(), g.num_tasks());
    }

    #[test]
    fn random_placement_spreads_further_than_nmap() {
        // The whole point of the heterogeneous-SoC scenario: longer
        // routes than the locality-chasing NMAP.
        let g = apps::vopd();
        let nmap_p = place(mesh(), &g);
        let rand_p = place_random(mesh(), &g, 3);
        let avg = |p: &Placement| -> f64 {
            let flows = routable_flows(&g, p);
            flows
                .iter()
                .map(|f| f64::from(mesh().manhattan(f.src, f.dst)))
                .sum::<f64>()
                / flows.len() as f64
        };
        assert!(avg(&rand_p) > avg(&nmap_p));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_graph_rejected() {
        let mut g = TaskGraph::new("big");
        let ids: Vec<TaskId> = (0..17).map(|i| g.add_task(&format!("t{i}"))).collect();
        for w in ids.windows(2) {
            g.add_flow(w[0], w[1], 1.0);
        }
        let _ = place(mesh(), &g);
    }
}
