//! Route candidate generation and contention-aware selection.
//!
//! SMART's single-cycle bypass only materializes where flows do *not*
//! share links, so route selection minimizes bandwidth-weighted link
//! sharing first and hop count second. Candidates are the two
//! dimension-ordered minimal routes (XY and YX); the selected set is
//! verified deadlock-free ([`crate::deadlock`]) and falls back to
//! all-XY (provably acyclic) if the mix ever creates a cycle.

use crate::deadlock::{check, DeadlockCheck};
use smart_sim::{FlowId, LinkId, NodeId, SourceRoute, Topology};
use std::collections::HashMap;

/// A flow to be routed: `(flow, src node, dst node, bandwidth MB/s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutableFlow {
    /// Flow id.
    pub flow: FlowId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bandwidth demand, MB/s.
    pub bandwidth_mbs: f64,
}

/// The YX (Y-then-X) dimension-ordered route on the unwrapped grid.
/// On a torus this is the non-wrapping alternative candidate; the
/// wrap-aware shortest routes come from [`SourceRoute::xy`].
///
/// # Panics
///
/// Panics if `src == dst`.
#[must_use]
pub fn yx(topo: impl Into<Topology>, src: NodeId, dst: NodeId) -> SourceRoute {
    let mesh = topo.into();
    assert_ne!(src, dst, "no route from a node to itself");
    let (cs, cd) = (mesh.coord(src), mesh.coord(dst));
    let mut routers = vec![src];
    let mut cur = cs;
    while cur.y != cd.y {
        cur.y = if cd.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        routers.push(mesh.node_at(cur));
    }
    while cur.x != cd.x {
        cur.x = if cd.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        routers.push(mesh.node_at(cur));
    }
    SourceRoute::from_router_path(mesh, &routers)
}

/// Minimal route candidates between two nodes (XY, plus YX when they
/// differ).
#[must_use]
pub fn candidates(topo: impl Into<Topology>, src: NodeId, dst: NodeId) -> Vec<SourceRoute> {
    let mesh = topo.into();
    let a = SourceRoute::xy(mesh, src, dst).expect("distinct endpoints");
    let b = yx(mesh, src, dst);
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

/// Non-minimal candidates: routes through a waypoint with up to
/// `max_extra` additional hops (the paper's §VI future work — on SMART,
/// a detour that avoids link sharing costs extra *millimetres* but zero
/// extra *cycles*, because the whole path is still one bypass segment).
///
/// Composes XY(src→w) with YX(w→dst) and keeps only loop-free results;
/// minimal candidates are always included first.
#[must_use]
pub fn detour_candidates(
    topo: impl Into<Topology>,
    src: NodeId,
    dst: NodeId,
    max_extra: u16,
) -> Vec<SourceRoute> {
    let mesh = topo.into();
    let mut out = candidates(mesh, src, dst);
    let min_hops = mesh.distance(src, dst);
    for w in mesh.nodes() {
        if w == src || w == dst {
            continue;
        }
        let total = mesh.distance(src, w) + mesh.distance(w, dst);
        if total > min_hops + max_extra {
            continue;
        }
        // Stitch every combination of dimension-ordered halves at the
        // waypoint; keep the loop-free ones.
        for first in candidates(mesh, src, w) {
            for second in candidates(mesh, w, dst) {
                let mut routers = first.routers(mesh);
                routers.extend_from_slice(&second.routers(mesh)[1..]);
                let mut seen = std::collections::HashSet::new();
                if !routers.iter().all(|r| seen.insert(*r)) {
                    continue;
                }
                let route = SourceRoute::from_router_path(mesh, &routers);
                if !out.contains(&route) {
                    out.push(route);
                }
            }
        }
    }
    out
}

/// Route-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOptions {
    /// Consider non-minimal detours (bounded by `max_extra_hops`).
    pub allow_detours: bool,
    /// Extra hops a detour may take beyond the minimal distance.
    pub max_extra_hops: u16,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            allow_detours: false,
            max_extra_hops: 2,
        }
    }
}

impl RouteOptions {
    /// The paper's future-work policy: detours up to 2 extra hops.
    #[must_use]
    pub fn with_detours() -> Self {
        RouteOptions {
            allow_detours: true,
            max_extra_hops: 2,
        }
    }
}

/// Cost of laying `route` over the current `link_load` map:
/// bandwidth-weighted sharing dominates; hop count breaks ties.
#[must_use]
pub fn route_cost(
    topo: impl Into<Topology>,
    route: &SourceRoute,
    bandwidth: f64,
    link_load: &HashMap<LinkId, f64>,
) -> f64 {
    let mesh = topo.into();
    let mut shared = 0.0;
    for l in route.links(mesh) {
        if let Some(other) = link_load.get(&l) {
            // Both flows suffer: weight by the smaller of the demands
            // plus a fixed penalty per shared link (any sharing forces
            // stops regardless of magnitude).
            shared += 1.0 + (other.min(bandwidth)) / 1000.0;
        }
    }
    shared * 1_000.0 + route.num_hops() as f64
}

/// Greedily route `flows` (descending bandwidth), minimizing sharing.
/// Returns deadlock-free routes.
#[must_use]
pub fn select_routes(
    topo: impl Into<Topology>,
    flows: &[RoutableFlow],
) -> Vec<(FlowId, SourceRoute)> {
    select_routes_with(topo, flows, RouteOptions::default())
}

/// [`select_routes`] with an explicit policy (e.g. non-minimal detours).
#[must_use]
pub fn select_routes_with(
    topo: impl Into<Topology>,
    flows: &[RoutableFlow],
    opts: RouteOptions,
) -> Vec<(FlowId, SourceRoute)> {
    let mesh = topo.into();
    let mut order: Vec<&RoutableFlow> = flows.iter().collect();
    order.sort_by(|a, b| {
        b.bandwidth_mbs
            .partial_cmp(&a.bandwidth_mbs)
            .expect("bandwidths are finite")
            .then(a.flow.0.cmp(&b.flow.0))
    });
    let mut link_load: HashMap<LinkId, f64> = HashMap::new();
    let mut picked: Vec<(FlowId, SourceRoute)> = Vec::new();
    for f in order {
        let cands = if opts.allow_detours {
            detour_candidates(mesh, f.src, f.dst, opts.max_extra_hops)
        } else {
            candidates(mesh, f.src, f.dst)
        };
        let mut best: Option<(f64, SourceRoute)> = None;
        for cand in cands {
            let cost = route_cost(mesh, &cand, f.bandwidth_mbs, &link_load);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, cand));
            }
        }
        let (_, route) = best.expect("at least one candidate");
        for l in route.links(mesh) {
            *link_load.entry(l).or_insert(0.0) += f.bandwidth_mbs;
        }
        picked.push((f.flow, route));
    }
    picked.sort_by_key(|(f, _)| f.0);

    // Deadlock safety net: XY+YX mixes (and detours) can create turn
    // cycles.
    let just_routes: Vec<SourceRoute> = picked.iter().map(|(_, r)| r.clone()).collect();
    if let DeadlockCheck::Cyclic(_) = check(mesh, &just_routes) {
        return flows
            .iter()
            .map(|f| {
                (
                    f.flow,
                    SourceRoute::xy(mesh, f.src, f.dst).expect("distinct endpoints"),
                )
            })
            .collect();
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> smart_sim::Mesh {
        smart_sim::Mesh::paper_4x4()
    }

    #[test]
    fn yx_differs_from_xy_on_l_shapes() {
        let a = SourceRoute::xy(mesh(), NodeId(0), NodeId(5)).unwrap();
        let b = yx(mesh(), NodeId(0), NodeId(5));
        assert_ne!(a, b);
        assert_eq!(a.num_hops(), b.num_hops());
        // Straight lines coincide.
        assert_eq!(
            SourceRoute::xy(mesh(), NodeId(0), NodeId(3)).unwrap(),
            yx(mesh(), NodeId(0), NodeId(3))
        );
        assert_eq!(candidates(mesh(), NodeId(0), NodeId(3)).len(), 1);
        assert_eq!(candidates(mesh(), NodeId(0), NodeId(5)).len(), 2);
    }

    #[test]
    fn selection_avoids_sharing_when_possible() {
        // Two crossing flows: 0->5 and 4->1. XY for both shares no link
        // (0->1->5 and 4->5->1? XY: 4->5 (E) then 5->1 (S); 0->1 (E)
        // then 1->5 (N). Links disjoint? 0.E, 1.N vs 4.E, 5.S — yes).
        // Whatever the geometry, the selected routes must not overlap.
        let flows = [
            RoutableFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(5),
                bandwidth_mbs: 100.0,
            },
            RoutableFlow {
                flow: FlowId(1),
                src: NodeId(4),
                dst: NodeId(1),
                bandwidth_mbs: 100.0,
            },
        ];
        let picked = select_routes(mesh(), &flows);
        let l0 = picked[0].1.links(mesh());
        let l1 = picked[1].1.links(mesh());
        assert!(
            l0.iter().all(|l| !l1.contains(l)),
            "routes must not share links: {l0:?} vs {l1:?}"
        );
    }

    #[test]
    fn selection_dodges_a_congested_straight_line() {
        // Flow A occupies the bottom row 0->3. Flow B (0->7) should
        // prefer a route avoiding row links used by A.
        let flows = [
            RoutableFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(3),
                bandwidth_mbs: 500.0,
            },
            RoutableFlow {
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(7),
                bandwidth_mbs: 100.0,
            },
        ];
        let picked = select_routes(mesh(), &flows);
        let a_links = picked[0].1.links(mesh());
        let b_links = picked[1].1.links(mesh());
        assert!(
            b_links.iter().all(|l| !a_links.contains(l)),
            "B must take the YX detour"
        );
    }

    #[test]
    fn selected_routes_are_deadlock_free() {
        // A dense random-ish flow set; whatever mix is chosen must pass
        // the CDG check (select_routes guarantees it by construction).
        let mut flows = Vec::new();
        for (i, (s, d)) in [
            (0u16, 15u16),
            (3, 12),
            (12, 3),
            (15, 0),
            (5, 10),
            (10, 5),
            (1, 14),
            (7, 8),
        ]
        .iter()
        .enumerate()
        {
            flows.push(RoutableFlow {
                flow: FlowId(i as u32),
                src: NodeId(*s),
                dst: NodeId(*d),
                bandwidth_mbs: 50.0 + i as f64,
            });
        }
        let picked = select_routes(mesh(), &flows);
        let routes: Vec<SourceRoute> = picked.iter().map(|(_, r)| r.clone()).collect();
        assert!(check(mesh(), &routes).is_free());
        assert_eq!(picked.len(), flows.len());
    }

    #[test]
    fn detour_candidates_include_minimal_and_bounded_detours() {
        let cands = detour_candidates(mesh(), NodeId(0), NodeId(2), 2);
        let min = mesh().manhattan(NodeId(0), NodeId(2)) as usize;
        assert!(cands.iter().any(|r| r.num_hops() == min), "minimal kept");
        assert!(
            cands.iter().any(|r| r.num_hops() == min + 2),
            "a 2-hop detour exists"
        );
        assert!(cands.iter().all(|r| r.num_hops() <= min + 2));
        // All loop-free.
        for r in &cands {
            let routers = r.routers(mesh());
            let mut seen = std::collections::HashSet::new();
            assert!(routers.iter().all(|n| seen.insert(*n)), "{routers:?}");
        }
    }

    #[test]
    fn detours_dodge_a_fully_blocked_row() {
        // Flow A saturates the straight line 0->1->2. With detours
        // enabled, flow B (0->2) must route around it entirely.
        let flows = [
            RoutableFlow {
                flow: FlowId(0),
                src: NodeId(0),
                dst: NodeId(2),
                bandwidth_mbs: 900.0,
            },
            RoutableFlow {
                flow: FlowId(1),
                src: NodeId(0),
                dst: NodeId(2),
                bandwidth_mbs: 100.0,
            },
        ];
        // Minimal-only: both flows share the row (0->2 has a single
        // minimal route).
        let minimal = select_routes(mesh(), &flows);
        assert_eq!(minimal[0].1, minimal[1].1);
        // With detours: B takes the +2 route through row 1 and shares
        // nothing (except unavoidably the endpoints' ports).
        let detoured = select_routes_with(mesh(), &flows, RouteOptions::with_detours());
        let a_links = detoured[0].1.links(mesh());
        let b_links = detoured[1].1.links(mesh());
        assert!(b_links.iter().all(|l| !a_links.contains(l)));
        assert_eq!(detoured[1].1.num_hops(), 4);
    }

    #[test]
    fn detoured_route_sets_stay_deadlock_free() {
        let mut flows = Vec::new();
        for (i, (s, d)) in [(0u16, 15u16), (15, 0), (3, 12), (12, 3), (1, 11), (14, 4)]
            .iter()
            .enumerate()
        {
            flows.push(RoutableFlow {
                flow: FlowId(i as u32),
                src: NodeId(*s),
                dst: NodeId(*d),
                bandwidth_mbs: 100.0,
            });
        }
        let picked = select_routes_with(mesh(), &flows, RouteOptions::with_detours());
        let routes: Vec<SourceRoute> = picked.iter().map(|(_, r)| r.clone()).collect();
        assert!(check(mesh(), &routes).is_free());
    }

    #[test]
    fn results_sorted_by_flow_id() {
        let flows = [
            RoutableFlow {
                flow: FlowId(3),
                src: NodeId(0),
                dst: NodeId(1),
                bandwidth_mbs: 10.0,
            },
            RoutableFlow {
                flow: FlowId(1),
                src: NodeId(2),
                dst: NodeId(3),
                bandwidth_mbs: 99.0,
            },
        ];
        let picked = select_routes(mesh(), &flows);
        assert_eq!(picked[0].0, FlowId(1));
        assert_eq!(picked[1].0, FlowId(3));
    }
}
