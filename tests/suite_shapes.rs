//! Integration test: the Fig 10 evaluation reproduces the paper's
//! *shape* — who wins, by roughly what factor, and where the
//! crossovers fall. Absolute cycle counts may drift with mapping
//! details; the bands here are intentionally wider than the point
//! estimates recorded in EXPERIMENTS.md.
//!
//! The suite (8 apps × 3 designs) runs **once**, shared across all
//! three tests, and its cells fan out across cores via
//! `ExperimentMatrix` — this was the battery's slowest file before.

use smart_bench::{run_suite, ExperimentReport, RunPlan};
use smart_core::config::NocConfig;
use smart_core::noc::DesignKind;
use std::collections::BTreeMap;
use std::sync::OnceLock;

fn suite() -> &'static (NocConfig, Vec<ExperimentReport>) {
    static SUITE: OnceLock<(NocConfig, Vec<ExperimentReport>)> = OnceLock::new();
    SUITE.get_or_init(|| {
        let cfg = NocConfig::paper_4x4();
        let results = run_suite(&cfg, &RunPlan::quick());
        (cfg, results)
    })
}

fn by_app(results: &[ExperimentReport], kind: DesignKind) -> BTreeMap<String, f64> {
    results
        .iter()
        .filter(|r| r.design == kind)
        .map(|r| (r.workload.clone(), r.avg_network_latency))
        .collect()
}

#[test]
fn latency_shape_matches_fig10a() {
    let (_, results) = suite();
    let mesh = by_app(results, DesignKind::Mesh);
    let smart = by_app(results, DesignKind::Smart);
    let ded = by_app(results, DesignKind::Dedicated);
    assert_eq!(mesh.len(), 8, "all eight applications ran");

    // Per-app ordering: Mesh > SMART >= Dedicated (within noise).
    for app in mesh.keys() {
        assert!(
            mesh[app] > smart[app],
            "{app}: Mesh {} must exceed SMART {}",
            mesh[app],
            smart[app]
        );
        assert!(
            smart[app] >= ded[app] - 0.05,
            "{app}: SMART {} cannot beat Dedicated {}",
            smart[app],
            ded[app]
        );
    }

    let avg = |m: &BTreeMap<String, f64>| m.values().sum::<f64>() / m.len() as f64;
    let (am, asm, ad) = (avg(&mesh), avg(&smart), avg(&ded));

    // Paper: 60.1% average latency reduction. Band: 50-75%.
    let reduction = (1.0 - asm / am) * 100.0;
    assert!(
        (50.0..=75.0).contains(&reduction),
        "SMART reduction vs Mesh {reduction:.1}% outside the paper band"
    );
    // Paper: SMART averages 3.8 cycles; ours lands lower because NMAP
    // packs tighter. Band: 2-5 cycles.
    assert!((2.0..=5.0).contains(&asm), "SMART average {asm:.2}");
    // Paper: 1.5 cycles above Dedicated. Band: 0.5-2.5.
    let gap = asm - ad;
    assert!((0.5..=2.5).contains(&gap), "SMART-Dedicated gap {gap:.2}");

    // Paper: WLAN/VOPD/PIP nearly identical to Dedicated; H264 and
    // MMS_MP3 2-4 cycles apart (hub contention). Check the contrast:
    // the worst hub app gap must clearly exceed the best pipeline app
    // gap.
    let gap_of = |app: &str| smart[app] - ded[app];
    let hub_gap = gap_of("H264").max(gap_of("MMS_MP3"));
    let pipe_gap = gap_of("WLAN").min(gap_of("VOPD"));
    assert!(
        hub_gap > pipe_gap + 1.0,
        "hub apps ({hub_gap:.2}) must suffer more than pipeline apps ({pipe_gap:.2})"
    );
    assert!(gap_of("WLAN") < 0.5, "WLAN ≈ Dedicated");
}

#[test]
fn power_shape_matches_fig10b() {
    let (_, results) = suite();
    let mut ratios = Vec::new();
    let mut mesh_link = BTreeMap::new();
    let mut ded_link = BTreeMap::new();
    let mut mesh_total = BTreeMap::new();
    let mut ded_total = BTreeMap::new();
    let mut smart_total = BTreeMap::new();
    for r in results {
        let p = r.power.expect("run_suite attaches the power model");
        match r.design {
            DesignKind::Mesh => {
                mesh_link.insert(r.workload.clone(), p.link_w);
                mesh_total.insert(r.workload.clone(), p.total_w());
            }
            DesignKind::Dedicated => {
                ded_link.insert(r.workload.clone(), p.link_w);
                ded_total.insert(r.workload.clone(), p.total_w());
                // Dedicated is link-only in the paper's plot.
                assert_eq!(p.buffer_w, 0.0, "{}", r.workload);
                assert_eq!(p.allocator_w, 0.0, "{}", r.workload);
                assert_eq!(p.xbar_pipeline_w, 0.0, "{}", r.workload);
            }
            DesignKind::Smart => {
                // SMART's policy is preset-driven clock gating.
                smart_total.insert(r.workload.clone(), p.total_w());
            }
        }
    }
    for (app, w) in &smart_total {
        ratios.push(mesh_total[app] / w);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // Paper: 2.2x average. Band: 1.6-3.2x.
    assert!(
        (1.6..=3.2).contains(&mean),
        "Mesh/SMART power ratio {mean:.2} outside the paper band"
    );

    // "All designs send the same traffic through the network, and hence
    // have similar link power": Mesh vs Dedicated link power within 15%.
    for (app, mw) in &mesh_link {
        let dw = ded_link[app];
        assert!(
            (mw - dw).abs() / mw < 0.15,
            "{app}: link power diverges ({mw:.2e} vs {dw:.2e})"
        );
    }

    // Magnitudes: Fig 10b's y-axis tops out at 8e-2 W.
    for (app, w) in &mesh_total {
        assert!(
            (1e-3..=8e-2).contains(w),
            "{app}: Mesh total {w:.2e} W out of the figure's range"
        );
    }
    // Dedicated is far below Mesh everywhere.
    for (app, w) in &ded_total {
        assert!(w < &(mesh_total[app] * 0.5), "{app}: Dedicated too hot");
    }
}

#[test]
fn source_queueing_is_reported_separately() {
    let (_, results) = suite();
    for r in results {
        assert!(
            r.avg_source_queue >= 0.0 && r.avg_source_queue.is_finite(),
            "{} {:?}",
            r.workload,
            r.design
        );
        assert!(
            r.avg_packet_latency >= r.avg_network_latency + 6.9,
            "{} {:?}: tail must trail head by ≥7 flit cycles",
            r.workload,
            r.design
        );
    }
}
