//! Integration tests for the Section V reconfiguration story: presets
//! round-trip through the memory-mapped register file, the network
//! refuses to reconfigure with traffic in flight, and the full
//! eight-application rotation works.

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::SmartNoc;
use smart_noc::arch::preset::MeshPresets;
use smart_noc::arch::reconfig::ReconfigurableNoc;
use smart_noc::mapping::MappedApp;
use smart_noc::sim::BernoulliTraffic;
use smart_noc::taskgraph::apps;

#[test]
fn presets_survive_the_register_file_for_every_app() {
    let cfg = NocConfig::paper_4x4();
    for graph in apps::all() {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let noc = SmartNoc::new(&cfg, &mapped.routes);
        let presets = noc.presets();
        let stores = presets.store_sequence(0x8000_0000);
        assert_eq!(stores.len(), 16, "{}", graph.name());
        let back = MeshPresets::from_store_sequence(cfg.topology, 0x8000_0000, &stores);
        assert_eq!(&back, presets, "{}: register round-trip", graph.name());
    }
}

#[test]
fn rotating_through_all_eight_apps() {
    let cfg = NocConfig::paper_4x4();
    let mut noc = ReconfigurableNoc::new(cfg.clone(), 0x4000_0000);
    for graph in apps::all() {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let report = noc
            .load_app(&mapped.name, &mapped.routes, 20_000)
            .expect("traffic drains within the budget");
        assert_eq!(report.cost_instructions, 16);
        // Push some traffic through so the next load has to drain.
        let live = noc.noc_mut().expect("loaded");
        let mut traffic = BernoulliTraffic::new(
            &mapped.rates,
            live.network().flows(),
            cfg.topology,
            cfg.flits_per_packet(),
            5,
        );
        live.network_mut().run_with(&mut traffic, 2_000);
        assert!(
            live.network().counters().packets_delivered > 0,
            "{}: traffic must flow after reconfiguration",
            mapped.name
        );
    }
    assert_eq!(noc.reconfig_count(), 8);
    assert_eq!(noc.current_app(), Some("PIP"));
}

#[test]
fn different_apps_produce_different_store_values() {
    let cfg = NocConfig::paper_4x4();
    let mut sequences = Vec::new();
    for graph in [apps::wlan(), apps::h264(), apps::vopd()] {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let noc = SmartNoc::new(&cfg, &mapped.routes);
        sequences.push(
            noc.presets()
                .store_sequence(0)
                .iter()
                .map(|s| s.value)
                .collect::<Vec<u64>>(),
        );
    }
    assert_ne!(sequences[0], sequences[1]);
    assert_ne!(sequences[1], sequences[2]);
}

#[test]
fn gating_follows_presets_per_app() {
    // Enabled port counts differ across applications and never exceed
    // the physical 160 ports of the 4x4 mesh.
    let cfg = NocConfig::paper_4x4();
    let mut counts = Vec::new();
    for graph in apps::all() {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let noc = SmartNoc::new(&cfg, &mapped.routes);
        let n = noc.presets().enabled_ports();
        assert!(n > 0 && n <= 160, "{}: {n}", graph.name());
        counts.push(n);
    }
    counts.dedup();
    assert!(counts.len() > 1, "apps must differ in port usage");
}
