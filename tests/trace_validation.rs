//! The event trace must agree with the engine's live activity counters
//! — the reproduction's version of "the power numbers come from the
//! same activity the VCD carries".

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::SmartNoc;
use smart_noc::mapping::MappedApp;
use smart_noc::sim::BernoulliTraffic;
use smart_noc::taskgraph::apps;

#[test]
fn replayed_trace_matches_live_counters() {
    let cfg = NocConfig::paper_4x4();
    let mapped = MappedApp::from_graph(&cfg, &apps::vopd());
    let mut noc = SmartNoc::new(&cfg, &mapped.routes);
    noc.network_mut()
        .enable_tracing(1_000_000)
        .expect("serial engine traces");
    let mut traffic = BernoulliTraffic::new(
        &mapped.rates,
        noc.network().flows(),
        cfg.topology,
        cfg.flits_per_packet(),
        17,
    );
    noc.network_mut().run_with(&mut traffic, 20_000);
    noc.network_mut().drain(5_000);

    let live = *noc.network().counters();
    let tracer = noc.network().tracer().expect("enabled");
    assert_eq!(tracer.dropped(), 0, "trace capacity must suffice");
    let replay = tracer.replay_counts();

    assert_eq!(replay.buffer_writes, live.buffer_writes);
    assert_eq!(replay.xbar_flit_traversals, live.xbar_flit_traversals);
    assert_eq!(replay.xbar_credit_traversals, live.xbar_credit_traversals);
    assert!((replay.link_flit_mm - live.link_flit_mm).abs() < 1e-6);
    assert!((replay.link_credit_mm - live.link_credit_mm).abs() < 1e-6);
    assert_eq!(replay.flits_delivered, live.flits_delivered);
    assert_eq!(replay.packets_delivered, live.packets_delivered);
    assert_eq!(replay.heads_delivered, replay.packets_delivered);
}

#[test]
fn vcd_dump_is_wellformed_for_real_traffic() {
    let cfg = NocConfig::paper_4x4();
    let mapped = MappedApp::from_graph(&cfg, &apps::pip());
    let mut noc = SmartNoc::new(&cfg, &mapped.routes);
    noc.network_mut()
        .enable_tracing(100_000)
        .expect("serial engine traces");
    let mut traffic = BernoulliTraffic::new(
        &mapped.rates,
        noc.network().flows(),
        cfg.topology,
        cfg.flits_per_packet(),
        3,
    );
    noc.network_mut().run_with(&mut traffic, 5_000);
    let vcd = noc
        .network()
        .tracer()
        .expect("enabled")
        .to_vcd(cfg.topology, "pip");
    assert_eq!(vcd.matches("$var wire 1").count(), 16);
    assert!(vcd.matches('#').count() > 10, "timestamps present");
    // Every value-change line references a declared identifier.
    let idents: Vec<&str> = vcd
        .lines()
        .filter(|l| l.starts_with("$var"))
        .map(|l| l.split_whitespace().nth(3).expect("var id"))
        .collect();
    for line in vcd.lines() {
        if line.starts_with('0') || line.starts_with('1') {
            let id = &line[1..];
            assert!(idents.contains(&id), "undeclared id {id}");
        }
    }
}
