//! End-to-end locks for the traffic subsystem: pattern × design
//! matrices are deterministic (serial == threaded), bursty and
//! trace-replay drives run through experiments *and* schedule phases,
//! and record→replay reproduces a live run bit-exactly.

use smart_noc::prelude::*;
use smart_noc::sim::TrafficSource;

/// Six structured spatial patterns valid on the paper's 4×4 mesh.
fn six_patterns() -> Vec<SpatialPattern> {
    vec![
        SpatialPattern::Transpose,
        SpatialPattern::BitComplement,
        SpatialPattern::BitReverse,
        SpatialPattern::Shuffle,
        SpatialPattern::Tornado,
        SpatialPattern::hotspot(vec![NodeId(5)], 0.8),
    ]
}

#[test]
fn pattern_matrix_is_deterministic_across_threads() {
    // 6 spatial patterns × all DesignKinds through ExperimentMatrix:
    // the parallel run must be bit-identical to the serial one.
    let workloads: Vec<Workload> = six_patterns()
        .into_iter()
        .map(|p| Workload::patterned(p, 0.02))
        .collect();
    let m = ExperimentMatrix::new(NocConfig::paper_4x4())
        .designs(&DesignKind::ALL)
        .workloads(workloads)
        .plan(RunPlan::smoke());
    assert_eq!(m.cells(), 18);
    let serial = m.clone().threads(1).run();
    let parallel = m.threads(8).run();
    let lines = |rs: &[ExperimentReport]| {
        rs.iter()
            .map(ExperimentReport::snapshot_line)
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&serial), lines(&parallel));
    for r in &serial {
        assert!(r.drained, "{}", r.workload);
        assert!(r.packets_delivered > 0, "{}", r.workload);
    }
}

#[test]
fn pattern_schedule_covers_four_designs_deterministically() {
    // The same six patterns as phases of one AppSchedule, fanned across
    // all four ScheduleDesigns (Mesh / SMART / Dedicated / live
    // Reconfigurable) — 6 patterns × 4 designs, serial == threaded.
    let schedule = six_patterns().into_iter().fold(AppSchedule::new(), |s, p| {
        s.then(Workload::patterned(p, 0.02), RunPlan::smoke())
    });
    let m = ScheduleMatrix::new(NocConfig::paper_4x4(), schedule);
    assert_eq!(m.cells(), 4);
    let serial = m.clone().threads(1).run().expect("all designs drain");
    let parallel = m.threads(4).run().expect("all designs drain");
    let snaps = |rs: &[ScheduleReport]| rs.iter().map(ScheduleReport::snapshot).collect::<Vec<_>>();
    assert_eq!(snaps(&serial), snaps(&parallel));
    for r in &serial {
        assert_eq!(r.phases.len(), 6, "{:?}", r.design);
        assert!(r.packets_delivered() > 0, "{:?}", r.design);
    }
}

#[test]
fn bursty_schedule_phase_runs_end_to_end() {
    // A non-Bernoulli (on/off bursty) phase inside a live reconfigurable
    // schedule: deterministic across repeats, and the bursty phase
    // matches the same drive run as a single experiment (the live
    // design's phases start from a fresh network with the same seed).
    let bursty = Drive::Temporal(TemporalModel::on_off(0.01, 0.01));
    let schedule = AppSchedule::new()
        .then(Workload::app("WLAN"), RunPlan::smoke())
        .then_driven(
            Workload::patterned(SpatialPattern::Transpose, 0.02),
            RunPlan::smoke(),
            bursty.clone(),
        );
    let exp = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule);
    let a = exp.run().expect("drains");
    let b = exp.run().expect("drains");
    assert_eq!(a.snapshot(), b.snapshot(), "schedule must be deterministic");

    let phase = &a.phases[1];
    assert!(phase.packets_delivered > 0, "bursts must deliver traffic");
    let single = Experiment::new(NocConfig::paper_4x4())
        .workload(Workload::patterned(SpatialPattern::Transpose, 0.02))
        .drive(bursty)
        .plan(RunPlan::smoke())
        .run();
    assert_eq!(phase.snapshot_line(), single.snapshot_line());
}

#[test]
fn workload_temporal_model_reaches_schedule_phases() {
    // The Patterned workload's own temporal model (not a Drive
    // override) must survive materialization into schedule phases:
    // a bursty workload under the default Bernoulli drive differs from
    // its steady twin, deterministically.
    let bursty = Workload::patterned_with(
        SpatialPattern::Tornado,
        TemporalModel::on_off(0.01, 0.01),
        0.02,
    );
    let steady = Workload::patterned(SpatialPattern::Tornado, 0.02);
    let run = |w: Workload| {
        MultiAppExperiment::new(
            NocConfig::paper_4x4(),
            AppSchedule::new().then(w, RunPlan::smoke()),
        )
        .run()
        .expect("drains")
    };
    let a = run(bursty.clone());
    let b = run(bursty);
    let c = run(steady);
    assert_eq!(a.snapshot(), b.snapshot());
    assert_ne!(
        a.phases[0].packets_injected, c.phases[0].packets_injected,
        "bursty and steady streams must differ"
    );
}

#[test]
fn recorded_trace_replays_bit_exactly_through_experiment_and_schedule() {
    // Freeze a bursty run into a TraceFile (through the JSONL text
    // form), then re-drive it (a) as a single experiment and (b) as a
    // schedule phase — both must reproduce the live run bit-exactly.
    let exp = Experiment::new(NocConfig::paper_4x4())
        .workload(Workload::patterned_with(
            SpatialPattern::BitReverse,
            TemporalModel::on_off(0.02, 0.02),
            0.03,
        ))
        .plan(RunPlan::smoke());
    let (live, trace) = exp.run_recorded();
    assert!(!trace.events.is_empty());

    let frozen = TraceFile::parse(&trace.to_jsonl()).expect("JSONL round trip");
    assert_eq!(frozen, trace);

    let replay = exp.drive(Drive::Trace(frozen.clone())).run();
    assert_eq!(live.snapshot_line(), replay.snapshot_line());
    assert_eq!(live.flow_latencies, replay.flow_latencies);

    let schedule = AppSchedule::new().then_driven(
        Workload::patterned(SpatialPattern::BitReverse, 0.03),
        RunPlan::smoke(),
        Drive::Trace(frozen),
    );
    let sched = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule)
        .run()
        .expect("drains");
    // The schedule phase runs the same seed/plan on a fresh network, so
    // its measurements equal the live run's (modulo the workload label,
    // which carries the recording's temporal suffix).
    assert_eq!(
        live.snapshot_line()
            .split_once(' ')
            .expect("label + rest")
            .1,
        sched.phases[0]
            .snapshot_line()
            .split_once(' ')
            .expect("label + rest")
            .1
    );
}

#[test]
fn custom_drive_plugs_any_boxed_source() {
    // The Drive::Custom factory path: a caller-supplied closure builds
    // an arbitrary boxed TrafficSource from the run context.
    let custom = Drive::custom(|ctx: &TrafficContext<'_>| -> Box<dyn TrafficSource> {
        Box::new(ModulatedTraffic::new(
            TemporalModel::Steady,
            ctx.rates,
            ctx.flows,
            ctx.topology,
            ctx.flits_per_packet,
            ctx.seed,
        ))
    });
    let base = Experiment::new(NocConfig::paper_4x4())
        .workload(Workload::patterned(SpatialPattern::Shuffle, 0.02))
        .plan(RunPlan::smoke());
    let via_custom = base.clone().drive(custom).run();
    let via_bernoulli = base.run();
    // ModulatedTraffic(Steady) is bit-exact with BernoulliTraffic.
    assert_eq!(via_custom.snapshot_line(), via_bernoulli.snapshot_line());
}
