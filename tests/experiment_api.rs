//! The one-experiment API, exercised through the facade:
//!
//! * every [`Workload`] variant produces **identical stats** to the
//!   legacy hand-rolled glue it replaced (determinism lock under a
//!   fixed seed);
//! * [`ExperimentMatrix`] runs its cells on multiple threads with
//!   per-cell results bit-identical to a serial run;
//! * the design point scales past the paper's 4×4 evaluation mesh —
//!   12×12 through the matrix, 16×16 through a single experiment.

use smart_noc::prelude::*;

/// The glue every bench bin and example used to hand-roll: build the
/// design, wire Bernoulli traffic to a mesh-baseline flow table, warm
/// up, measure, drain.
fn legacy_run(
    cfg: &NocConfig,
    kind: DesignKind,
    routes: &[(FlowId, SourceRoute)],
    rates: &[(FlowId, f64)],
    plan: RunPlan,
) -> (u64, u64, f64, f64) {
    let table = FlowTable::mesh_baseline(cfg.topology, routes);
    let mut design = Design::build(kind, cfg, routes);
    let mut traffic = BernoulliTraffic::new(
        rates,
        &table,
        cfg.topology,
        cfg.flits_per_packet(),
        plan.seed,
    );
    design.set_stats_from(plan.warmup);
    design.run_with(&mut traffic, plan.warmup);
    design.reset_counters();
    design.run_with(&mut traffic, plan.measure);
    design.drain(plan.drain);
    (
        design.counters().packets_injected,
        design.counters().packets_delivered,
        design.stats().avg_network_latency(),
        design.stats().avg_packet_latency(),
    )
}

fn assert_matches_legacy(cfg: &NocConfig, workload: &Workload, plan: RunPlan) {
    let routed = workload.materialize(cfg);
    for kind in DesignKind::ALL {
        let report = Experiment::new(cfg.clone())
            .design(kind)
            .workload(workload.clone())
            .plan(plan)
            .run();
        let (injected, delivered, net, packet) =
            legacy_run(cfg, kind, &routed.routes, &routed.rates, plan);
        let ctx = format!("{}/{}", kind.label(), routed.name);
        assert_eq!(report.packets_injected, injected, "{ctx}");
        assert_eq!(report.packets_delivered, delivered, "{ctx}");
        assert_eq!(report.avg_network_latency, net, "{ctx}: network latency");
        assert_eq!(report.avg_packet_latency, packet, "{ctx}: packet latency");
    }
}

#[test]
fn fig7_workload_matches_legacy_glue() {
    let cfg = NocConfig::paper_4x4();
    assert_matches_legacy(&cfg, &Workload::fig7(), RunPlan::smoke());
}

#[test]
fn every_app_workload_matches_legacy_glue() {
    let cfg = NocConfig::paper_4x4();
    let plan = RunPlan {
        warmup: 500,
        measure: 4_000,
        drain: 3_000,
        seed: 0xAB1E,
    };
    for graph in apps::all() {
        assert_matches_legacy(&cfg, &Workload::app(graph.name()), plan);
    }
}

#[test]
fn bernoulli_uniform_workload_matches_legacy_glue() {
    let cfg = NocConfig::paper_4x4();
    assert_matches_legacy(
        &cfg,
        &Workload::uniform(8, 0.02, 0x5EED),
        RunPlan::measure_all(4_000, 4_000, 0x5AA7_C0DE),
    );
}

#[test]
fn matrix_runs_12x12_on_multiple_threads_deterministically() {
    // Past the paper's 4×4 point: a 12×12 mesh (144 routers), six
    // cells, fanned out over scoped threads.
    let cfg = NocConfig::scaled(12);
    assert_eq!(cfg.topology.len(), 144);
    let matrix = ExperimentMatrix::new(cfg)
        .designs(&[DesignKind::Mesh, DesignKind::Smart])
        .workloads(vec![
            Workload::uniform(12, 0.005, 0xD1CE),
            Workload::uniform(20, 0.01, 0xFACE),
            Workload::app("VOPD"),
        ])
        .plan(RunPlan {
            warmup: 0,
            measure: 3_000,
            drain: 4_000,
            seed: 12,
        });

    let parallel = matrix.clone().threads(3).run_instrumented();
    assert_eq!(parallel.reports.len(), 6);
    assert!(
        parallel.worker_threads >= 2,
        "6 simulation cells across 3 workers must engage >1 thread, got {}",
        parallel.worker_threads
    );
    for r in &parallel.reports {
        assert!(r.drained, "{}/{}", r.design.label(), r.workload);
        assert_eq!(
            r.packets_delivered,
            r.packets_injected,
            "{}/{}",
            r.design.label(),
            r.workload
        );
        assert!(r.packets_injected > 0, "{}", r.workload);
    }

    // Same cells serially: every report is bit-identical.
    let serial = matrix.threads(1).run();
    assert_eq!(serial.len(), parallel.reports.len());
    for (s, p) in serial.iter().zip(parallel.reports.iter()) {
        assert_eq!(s.snapshot_line(), p.snapshot_line());
        assert_eq!(s.flow_latencies, p.flow_latencies);
        assert_eq!(s.counters, p.counters);
    }
}

#[test]
fn single_experiment_runs_16x16() {
    let cfg = NocConfig::scaled(16);
    assert_eq!(cfg.topology.len(), 256);
    let report = Experiment::new(cfg)
        .design(DesignKind::Smart)
        .workload(Workload::uniform(16, 0.004, 0xB16))
        .plan(RunPlan::measure_all(2_000, 4_000, 16))
        .run();
    assert!(report.drained);
    assert_eq!(report.packets_delivered, report.packets_injected);
    assert!(report.packets_injected > 0);
    // Long XY routes on a 30-hop-diameter mesh still obey HPC_max
    // segmentation: zero-load latency stays 1 + 3·stops.
    let compile = report.compile.expect("SMART metrics");
    for ((flow, stops), (zf, zl)) in compile.stops.iter().zip(compile.zero_load_latency.iter()) {
        assert_eq!(flow, zf);
        assert_eq!(*zl, 1 + 3 * stops.len() as u64, "{flow}");
    }
}
