//! Property-based tests over the preset compiler and the cycle-accurate
//! engine: for *any* set of routed flows, compilation must succeed, all
//! invariants must hold (the engine asserts link exclusivity, VC
//! protocol and buffer bounds internally), every packet must be
//! delivered, and zero-load latencies must equal the plan's prediction.

use proptest::prelude::*;
use smart_noc::arch::compile::compile;
use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::{Design, DesignKind};
use smart_noc::sim::{FlowId, Mesh, NodeId, ScriptedTraffic, SourceRoute};

/// Strategy: up to `n` random (src, dst) pairs on the 4x4 mesh, routed
/// XY (always deadlock-free) — the preset compiler must handle ANY such
/// set, including heavy overlaps.
fn arb_flows(n: usize) -> impl Strategy<Value = Vec<(u16, u16)>> {
    prop::collection::vec((0u16..16, 0u16..16), 1..=n)
        .prop_map(|v| v.into_iter().filter(|(s, d)| s != d).collect::<Vec<_>>())
        .prop_filter("need at least one flow", |v| !v.is_empty())
}

fn routed(pairs: &[(u16, u16)]) -> Vec<(FlowId, SourceRoute)> {
    let mesh = Mesh::paper_4x4();
    pairs
        .iter()
        .enumerate()
        .map(|(i, (s, d))| {
            (
                FlowId(i as u32),
                SourceRoute::xy(mesh, NodeId(*s), NodeId(*d)).unwrap(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiler_accepts_any_flow_set(pairs in arb_flows(12)) {
        let routes = routed(&pairs);
        let app = compile(Mesh::paper_4x4(), 8, &routes);
        // Every flow got a plan covering its route (validated inside),
        // and stop fractions are sane.
        prop_assert_eq!(app.flows.len(), routes.len());
        let frac = app.bypass_fraction(Mesh::paper_4x4());
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn all_packets_delivered_under_random_contention(
        pairs in arb_flows(10),
        seed in 0u64..1000,
    ) {
        let cfg = NocConfig::paper_4x4();
        let routes = routed(&pairs);
        let mut design = Design::build(DesignKind::Smart, &cfg, &routes);
        // Three packets per flow at scattered times.
        let mut events = Vec::new();
        for (i, (f, _)) in routes.iter().enumerate() {
            for k in 0..3u64 {
                events.push((seed % 97 + 13 * k + i as u64, *f));
            }
        }
        let n_packets = events.len() as u64;
        let flows_table = match &design {
            Design::Smart(s) => s.network().flows().clone(),
            _ => unreachable!("built as SMART"),
        };
        let mut traffic = ScriptedTraffic::new(
            events,
            cfg.flits_per_packet(),
            &flows_table,
            cfg.topology,
        );
        design.run_with(&mut traffic, 4_000);
        prop_assert!(design.drain(4_000), "network must drain");
        prop_assert_eq!(design.counters().packets_delivered, n_packets);
        prop_assert_eq!(
            design.counters().flits_delivered,
            n_packets * u64::from(cfg.flits_per_packet())
        );
    }

    #[test]
    fn lone_packet_latency_equals_plan_prediction(
        src in 0u16..16,
        dst in 0u16..16,
        kind in prop::sample::select(vec![DesignKind::Mesh, DesignKind::Smart]),
    ) {
        prop_assume!(src != dst);
        let cfg = NocConfig::paper_4x4();
        let routes = routed(&[(src, dst)]);
        let mut design = Design::build(kind, &cfg, &routes);
        let flows_table = smart_noc::sim::FlowTable::mesh_baseline(cfg.topology, &routes);
        let mut traffic = ScriptedTraffic::new(
            vec![(0, FlowId(0))],
            cfg.flits_per_packet(),
            &flows_table,
            cfg.topology,
        );
        design.run_with(&mut traffic, 200);
        prop_assert!(design.drain(200));
        let got = design.stats().avg_network_latency();
        let expected = match kind {
            DesignKind::Mesh => {
                let hops = Mesh::paper_4x4().manhattan(NodeId(src), NodeId(dst));
                f64::from(4 * hops + 4)
            }
            DesignKind::Smart => {
                let app = compile(cfg.topology, cfg.hpc_max, &routes);
                app.flows.plan(FlowId(0)).zero_load_latency() as f64
            }
            DesignKind::Dedicated => unreachable!("not sampled"),
        };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn smart_zero_load_latency_is_one_plus_three_stops(pairs in arb_flows(8)) {
        let cfg = NocConfig::paper_4x4();
        let routes = routed(&pairs);
        let app = compile(cfg.topology, cfg.hpc_max, &routes);
        for (flow, _) in &routes {
            let plan = app.flows.plan(*flow);
            prop_assert_eq!(
                plan.zero_load_latency(),
                1 + 3 * app.stops[flow].len() as u64
            );
        }
    }

    #[test]
    fn route_encoding_round_trips(src in 0u16..16, dst in 0u16..16) {
        prop_assume!(src != dst);
        let mesh = Mesh::paper_4x4();
        let r = SourceRoute::xy(mesh, NodeId(src), NodeId(dst)).unwrap();
        let bits = r.encode();
        let back = SourceRoute::decode(NodeId(src), bits, r.num_hops());
        prop_assert_eq!(back, r);
    }

    #[test]
    fn preset_registers_round_trip(word in 0u64..(1 << 40)) {
        use smart_noc::arch::preset::RouterPreset;
        // Not every word is a valid encoding; only test words that
        // decode cleanly (catch_unwind to filter).
        let decoded = std::panic::catch_unwind(|| RouterPreset::decode(word));
        if let Ok(p) = decoded {
            prop_assert_eq!(RouterPreset::decode(p.encode()), p);
        }
    }
}

#[test]
fn mesh_and_smart_agree_on_packet_counts_under_suite_traffic() {
    // Same scripted traffic on both designs: identical delivery counts.
    let cfg = NocConfig::paper_4x4();
    let routes = routed(&[(0, 5), (5, 10), (10, 15), (3, 12), (12, 3)]);
    let mut counts = Vec::new();
    for kind in [DesignKind::Mesh, DesignKind::Smart] {
        let mut design = Design::build(kind, &cfg, &routes);
        let table = smart_noc::sim::FlowTable::mesh_baseline(cfg.topology, &routes);
        let events: Vec<(u64, FlowId)> = (0..50u64)
            .map(|i| (i * 3, FlowId((i % 5) as u32)))
            .collect();
        let mut traffic =
            ScriptedTraffic::new(events, cfg.flits_per_packet(), &table, cfg.topology);
        design.run_with(&mut traffic, 2_000);
        assert!(design.drain(2_000));
        counts.push(design.counters().packets_delivered);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[0], 50);
}
