//! Cross-validation: the calibrated analytic link model (anchored on the
//! paper's Table I / chip numbers) and the independent switch-level
//! transient solver must agree on orderings and magnitudes.

use smart_noc::link::device::{FullSwingParams, Repeater, VlrParams};
use smart_noc::link::transient::{self, simulate, ChainSpec, TransientConfig};
use smart_noc::link::units::{Gbps, Picoseconds};
use smart_noc::link::wire::{Spacing, WireRc};
use smart_noc::link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};

fn transient_delay(rep: Repeater, spacing: Spacing, rate: Gbps) -> f64 {
    let spec = ChainSpec {
        repeater: rep,
        wire: WireRc::for_45nm(spacing),
        hops: 5,
        sections_per_mm: 5,
    };
    simulate(&spec, &TransientConfig::at_rate(rate)).delay_ps_per_mm
}

#[test]
fn both_models_rank_low_swing_faster() {
    let rate = Gbps(2.0);
    // Analytic (chip-calibrated, min pitch).
    let ls = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Fabricated,
        WireSpacing::MinPitch,
    );
    let fs = CalibratedLinkModel::new(
        LinkStyle::FullSwing,
        CircuitVariant::Fabricated,
        WireSpacing::MinPitch,
    );
    assert!(ls.delay_ps_per_mm(rate) < fs.delay_ps_per_mm(rate));
    // Transient, same physical point.
    let t_ls = transient_delay(
        Repeater::VoltageLocked(VlrParams::default_45nm()),
        Spacing::MinPitch,
        rate,
    );
    let t_fs = transient_delay(
        Repeater::FullSwing(FullSwingParams::default_45nm()),
        Spacing::MinPitch,
        rate,
    );
    assert!(t_ls < t_fs, "transient: VLR {t_ls} vs FS {t_fs} ps/mm");
}

#[test]
fn transient_delays_land_near_the_chip_calibration() {
    // Chip: ~60 ps/mm (VLR), ~100 ps/mm (full-swing) at min pitch.
    let t_ls = transient_delay(
        Repeater::VoltageLocked(VlrParams::default_45nm()),
        Spacing::MinPitch,
        Gbps(1.0),
    );
    let t_fs = transient_delay(
        Repeater::FullSwing(FullSwingParams::default_45nm()),
        Spacing::MinPitch,
        Gbps(1.0),
    );
    assert!(
        (t_ls - 60.0).abs() < 20.0,
        "VLR transient {t_ls} ps/mm vs chip 60"
    );
    assert!(
        (t_fs - 100.0).abs() < 25.0,
        "full-swing transient {t_fs} ps/mm vs chip 100"
    );
}

#[test]
fn transient_hops_per_cycle_brackets_table1_at_2ghz() {
    // Table I (resized circuit): low-swing 8, full-swing 6 at 2 Gb/s
    // with 2x spacing. The resized transient sizing must land within
    // ±1 hop of both cells and preserve the LS > FS ordering.
    let wire = WireRc::for_45nm(Spacing::Double);
    let ls = transient::max_hops_per_cycle(
        Repeater::VoltageLocked(VlrParams::resized_2ghz()),
        wire,
        Gbps(2.0),
        Picoseconds(20.0),
    );
    let fs = transient::max_hops_per_cycle(
        Repeater::FullSwing(FullSwingParams::default_45nm()),
        wire,
        Gbps(2.0),
        Picoseconds(20.0),
    );
    assert!(ls > fs);
    assert!((7..=9).contains(&ls), "low-swing {ls} vs Table I 8");
    assert!((5..=7).contains(&fs), "full-swing {fs} vs Table I 6");
}

#[test]
fn energy_rate_trend_agrees() {
    // Table I: low-swing fJ/b/mm falls as the rate rises (static-current
    // amortization). Both models must show it.
    let cal = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    assert!(cal.energy_fj_per_bit_mm(Gbps(1.0)) > cal.energy_fj_per_bit_mm(Gbps(3.0)));

    let spec = |rate: Gbps| {
        let s = ChainSpec {
            repeater: Repeater::VoltageLocked(VlrParams::default_45nm()),
            wire: WireRc::for_45nm(Spacing::Double),
            hops: 4,
            sections_per_mm: 5,
        };
        simulate(&s, &TransientConfig::at_rate(rate)).energy_fj_per_bit_mm
    };
    assert!(spec(Gbps(1.0)) > spec(Gbps(3.0)));
}

#[test]
fn wider_spacing_helps_in_both_models() {
    let rate = Gbps(2.0);
    let tight = transient_delay(
        Repeater::VoltageLocked(VlrParams::default_45nm()),
        Spacing::MinPitch,
        rate,
    );
    let wide = transient_delay(
        Repeater::VoltageLocked(VlrParams::default_45nm()),
        Spacing::Double,
        rate,
    );
    assert!(wide < tight, "transient: 2x spacing {wide} vs min {tight}");

    let cal_tight = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::MinPitch,
    );
    let cal_wide = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    assert!(cal_wide.delay_ps_per_mm(rate) < cal_tight.delay_ps_per_mm(rate));
}

#[test]
fn hpc_max_used_by_the_noc_matches_table1() {
    // The NoC config derives HPC_max from the same calibrated model the
    // Table I bench regenerates — pin the headline number.
    let cfg = smart_noc::arch::config::NocConfig::paper_4x4();
    let model = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    assert_eq!(cfg.hpc_max as u32, model.max_hops_per_cycle(Gbps(2.0)));
    assert_eq!(cfg.hpc_max, 8);
}
