//! Integration tests over the generated tool-flow artifacts: the RTL,
//! views and testbenches must stay mutually consistent with the
//! architectural model.

use smart_noc::arch::compile::compile;
use smart_noc::arch::config::NocConfig;
use smart_noc::link::units::Gbps;
use smart_noc::link::{CalibratedLinkModel, CircuitVariant, LinkStyle, WireSpacing};
use smart_noc::mapping::MappedApp;
use smart_noc::rtlgen::{generate_all, lef, liberty, router_tb, Floorplan, GenParams, MacroBlock};
use smart_noc::taskgraph::apps;

#[test]
fn rtl_config_register_layout_matches_architectural_encoding() {
    // The Verilog slices cfg[9:0]/[24:10]/[39:25]; the architectural
    // encoder packs input mux / crossbar / credit selects in the same
    // positions. Encode a known preset and check the field extraction
    // the RTL would perform.
    let cfg = NocConfig::paper_4x4();
    let mapped = MappedApp::from_graph(&cfg, &apps::vopd());
    let app = compile(cfg.topology, cfg.hpc_max, &mapped.routes);
    for node in cfg.topology.nodes() {
        let p = app.presets.router(node);
        let w = p.encode();
        let input_mux = w & 0x3FF;
        let xbar = (w >> 10) & 0x7FFF;
        let credit = (w >> 25) & 0x7FFF;
        assert_eq!(
            w,
            input_mux | (xbar << 10) | (credit << 25) | (w >> 40 << 40)
        );
        assert!(w < (1 << 40), "only the documented 40 bits are used");
    }
}

#[test]
fn testbench_exists_for_every_bypassing_router_of_every_app() {
    let cfg = NocConfig::paper_4x4();
    let params = GenParams::from_config(&cfg);
    for graph in apps::all() {
        let mapped = MappedApp::from_graph(&cfg, &graph);
        let app = compile(cfg.topology, cfg.hpc_max, &mapped.routes);
        let mut total_checks = 0;
        for node in cfg.topology.nodes() {
            let tb = router_tb(&params, app.presets.router(node));
            total_checks += tb.checks;
            // The config word in the TB is this router's register value.
            let word = format!("64'h{:016x}", app.presets.router(node).encode());
            assert!(tb.source.contains(&word), "{}: {node}", graph.name());
        }
        assert!(
            total_checks > 0,
            "{}: at least one single-cycle bypass to check",
            graph.name()
        );
    }
}

#[test]
fn liberty_delay_fits_the_cycle_budget() {
    // The .lib arc delay for one hop times HPC_max must fit inside one
    // 2 GHz period minus setup — the timing closure argument of the
    // whole paper.
    let cfg = NocConfig::paper_4x4();
    let link = CalibratedLinkModel::new(
        LinkStyle::LowSwing,
        CircuitVariant::Resized2GHz,
        WireSpacing::Double,
    );
    let block = MacroBlock::fig8_tx32();
    let lib = liberty(&block, &link, Gbps(cfg.clock_ghz));
    // Extract the emitted arc delay (ns).
    let delay_ns: f64 = lib
        .lines()
        .find(|l| l.contains("cell_rise"))
        .and_then(|l| l.split('"').nth(1))
        .expect("delay value present")
        .parse()
        .expect("numeric delay");
    let period_ns = 1.0 / cfg.clock_ghz;
    assert!(
        delay_ns * cfg.hpc_max as f64 <= period_ns,
        "{} hops x {delay_ns} ns must fit a {period_ns} ns cycle",
        cfg.hpc_max
    );
}

#[test]
fn lef_and_floorplan_geometry_are_consistent() {
    let params = GenParams::paper_4x4();
    let plan = Floorplan::generate(&params);
    let lef_text = lef(&plan.tx_block);
    assert!(lef_text.contains(&format!(
        "SIZE {:.3} BY {:.3} ;",
        plan.tx_block.width_um(),
        plan.tx_block.height_um()
    )));
    // The Tx block fits along a tile edge with lots of margin.
    assert!(plan.tx_block.width_um() < plan.tile_um / 4.0);
}

#[test]
fn mesh_rtl_scales_with_configuration() {
    for k in [2u16, 4, 6] {
        let params = GenParams {
            mesh_width: k,
            mesh_height: k,
            ..GenParams::paper_4x4()
        };
        let mods = generate_all(&params);
        let mesh_top = mods
            .iter()
            .find(|m| m.name == "smart_mesh")
            .expect("mesh top generated");
        assert_eq!(
            mesh_top.source.matches("smart_router #").count(),
            usize::from(k) * usize::from(k)
        );
    }
}
