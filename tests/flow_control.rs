//! Flow-control integration tests: the multi-hop credit mesh must
//! sustain throughput with only two VCs, and throughput limits must
//! match first-principles bounds.

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::SmartNoc;
use smart_noc::sim::{FlowId, NodeId, ScriptedTraffic, SourceRoute};

/// A long back-to-back packet train over a multi-hop bypass path. With
/// VCT + 2 VCs, serialization (8 cycles/packet) dominates as long as
/// the credit round trip (segment + pipeline + credit mesh return)
/// stays under two packet times — which the single-cycle credit mesh
/// guarantees even for a 6-hop segment. Sustained throughput must be
/// within a few percent of 1 packet per 8 cycles.
#[test]
fn credit_mesh_sustains_full_throughput_across_six_hops() {
    let cfg = NocConfig::paper_4x4();
    let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(15)).unwrap(); // 6 hops
    let routes = vec![(FlowId(0), route)];
    let mut noc = SmartNoc::new(&cfg, &routes);
    assert!(
        noc.compiled().stops[&FlowId(0)].is_empty(),
        "single flow flies NIC to NIC"
    );
    let n_packets = 200u64;
    let events: Vec<(u64, FlowId)> = (0..n_packets).map(|_| (0, FlowId(0))).collect();
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    let horizon = n_packets * 8 + 200;
    noc.network_mut().run_with(&mut traffic, horizon);
    assert!(noc.network_mut().drain(1_000));
    let delivered = noc.network().counters().packets_delivered;
    assert_eq!(delivered, n_packets);
    // Completion time bounds throughput: the tail of the last packet
    // must leave within ~8 cycles per packet plus pipeline slack.
    let finished = noc.network().cycle();
    let ideal = n_packets * u64::from(cfg.flits_per_packet());
    assert!(
        finished < ideal + ideal / 10 + 100,
        "train of {n_packets} packets took {finished} cycles (ideal ≈ {ideal})"
    );
}

/// The same train through a path with stops: still full throughput —
/// stops add latency, not bandwidth loss (pipelined 3-stage routers).
#[test]
fn stops_cost_latency_not_bandwidth() {
    let cfg = NocConfig::paper_4x4();
    // Two flows sharing a link force stops on both.
    let routes = vec![
        (
            FlowId(0),
            SourceRoute::from_router_path(
                cfg.topology,
                &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            ),
        ),
        (
            FlowId(1),
            SourceRoute::from_router_path(
                cfg.topology,
                &[NodeId(4), NodeId(0), NodeId(1), NodeId(5)],
            ),
        ),
    ];
    let mut noc = SmartNoc::new(&cfg, &routes);
    assert!(
        !noc.compiled().stops[&FlowId(0)].is_empty(),
        "flow 0 must stop somewhere"
    );
    // Drive only flow 0 hard.
    let n_packets = 100u64;
    let events: Vec<(u64, FlowId)> = (0..n_packets).map(|_| (0, FlowId(0))).collect();
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut()
        .run_with(&mut traffic, n_packets * 8 + 300);
    assert!(noc.network_mut().drain(2_000));
    assert_eq!(noc.network().counters().packets_delivered, n_packets);
    let finished = noc.network().cycle();
    let ideal = n_packets * 8;
    assert!(
        finished < ideal + ideal / 5 + 200,
        "stopped path still streams: {finished} cycles for ideal {ideal}"
    );
}

/// Zero-load latency must be unaffected by buffer depth above the
/// packet size, but throughput collapses if VCs cannot cover the
/// round trip (1 VC: next packet waits for the previous credit).
#[test]
fn one_vc_halves_train_throughput() {
    let mut cfg = NocConfig::paper_4x4();
    cfg.vcs_per_port = 1;
    let route = SourceRoute::xy(cfg.topology, NodeId(0), NodeId(15)).unwrap();
    let routes = vec![(FlowId(0), route)];
    let mut noc = SmartNoc::new(&cfg, &routes);
    let n_packets = 50u64;
    let events: Vec<(u64, FlowId)> = (0..n_packets).map(|_| (0, FlowId(0))).collect();
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut().run_with(&mut traffic, 3_000);
    assert!(noc.network_mut().drain(2_000));
    let finished = noc.network().cycle();
    // With one VC the sender stalls each packet on the previous one's
    // credit round trip: strictly slower than the 2-VC ideal of
    // 8 cycles/packet.
    assert!(
        finished > n_packets * 9,
        "1 VC must be credit-bound, finished in {finished}"
    );
    assert_eq!(noc.network().counters().packets_delivered, n_packets);
}
