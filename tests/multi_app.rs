//! Multi-app schedule suite: the eight-application rotation across all
//! four schedule designs is deterministic (serial == parallel ==
//! repeated run, bit-exact), every SMART transition costs one store per
//! router (16 at 4×4, 64 at 8×8), reconfiguration drains are measured,
//! and an exhausted drain budget surfaces as `Err`, not a panic.

use smart_noc::prelude::*;

fn apps_schedule() -> AppSchedule {
    AppSchedule::apps(RunPlan::smoke())
}

/// A phase plan that deliberately leaves traffic in flight: no drain
/// window, so the *next* transition has to pay for emptying the
/// network, exactly the Fig 1 regime.
fn hot_plan(seed: u64) -> RunPlan {
    RunPlan {
        warmup: 0,
        measure: 1_000,
        drain: 0,
        seed,
    }
}

#[test]
fn eight_apps_by_four_designs_is_deterministic() {
    let m = ScheduleMatrix::new(NocConfig::paper_4x4(), apps_schedule()).threads(4);
    let parallel = m.run().expect("all designs drain");
    assert_eq!(parallel.len(), 4, "one report per schedule design");
    assert!(parallel.iter().all(|r| r.phases.len() == 8));

    let snaps = |rs: &[ScheduleReport]| rs.iter().map(ScheduleReport::snapshot).collect::<Vec<_>>();
    let serial = m.clone().threads(1).run().expect("all designs drain");
    assert_eq!(
        snaps(&parallel),
        snaps(&serial),
        "parallel cells must be bit-identical to a serial run"
    );
    let repeated = m.run().expect("all designs drain");
    assert_eq!(
        snaps(&parallel),
        snaps(&repeated),
        "repeated runs must be bit-identical"
    );
}

#[test]
fn transitions_chain_apps_and_report_section_v_costs() {
    let reports = ScheduleMatrix::new(NocConfig::paper_4x4(), apps_schedule())
        .threads(2)
        .run()
        .expect("all designs drain");
    for r in &reports {
        assert_eq!(r.transitions.len(), r.phases.len());
        assert!(r.transitions[0].from.is_none(), "first phase boots cold");
        for w in r.transitions.windows(2) {
            assert_eq!(
                w[1].from.as_deref(),
                Some(w[0].to.as_str()),
                "{}: transitions must chain",
                r.design.label()
            );
        }
        let expected_stores = match r.design {
            ScheduleDesign::Mesh | ScheduleDesign::Dedicated => 0,
            ScheduleDesign::Smart | ScheduleDesign::Reconfigurable => 16,
        };
        assert!(
            r.transitions
                .iter()
                .all(|t| t.store_count == expected_stores),
            "{}: every 4x4 switch costs {expected_stores} stores",
            r.design.label()
        );
        assert!(r.packets_delivered() > 0);
        assert!(r.avg_network_latency().is_finite());
    }
}

#[test]
fn one_store_per_router_at_4x4_and_8x8() {
    for (cfg, expected) in [(NocConfig::paper_4x4(), 16), (NocConfig::scaled(8), 64)] {
        let schedule = AppSchedule::new()
            .then(Workload::app("WLAN"), RunPlan::smoke())
            .then(Workload::app("H264"), RunPlan::smoke())
            .then(Workload::app("VOPD"), RunPlan::smoke());
        let report = MultiAppExperiment::new(cfg, schedule)
            .run()
            .expect("smoke phases drain");
        assert!(
            report.transitions.iter().all(|t| t.store_count == expected),
            "{expected} routers = {expected} instructions"
        );
        assert_eq!(report.total_store_instructions(), 3 * expected);
        assert!(report.amortized_instruction_overhead() > 0.0);
    }
}

#[test]
fn in_flight_traffic_forces_a_transition_drain() {
    let schedule = AppSchedule::new()
        .then(Workload::uniform(8, 0.2, 11), hot_plan(7))
        .then(Workload::uniform(8, 0.25, 12), hot_plan(8))
        .drain_budget(20_000);
    let report = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule)
        .run()
        .expect("generous budget drains");
    assert!(
        !report.phases[0].drained,
        "phase 0 must end with traffic in flight"
    );
    assert!(
        report.transitions[1].drain_cycles > 0,
        "the reconfiguration had to drain in-flight traffic"
    );
    assert_eq!(
        report.total_drain_cycles(),
        report.transitions[1].drain_cycles
    );
    // Packets delivered during the transition drain are credited to
    // the phase that injected them, so nothing goes missing from the
    // schedule-wide accounting.
    assert_eq!(
        report.phases[0].packets_delivered, report.phases[0].packets_injected,
        "drain deliveries belong to phase 0"
    );
}

#[test]
fn drain_failure_surfaces_as_err_not_panic() {
    let schedule = AppSchedule::new()
        .then(Workload::uniform(8, 0.2, 11), hot_plan(7))
        .then(Workload::uniform(8, 0.25, 12), hot_plan(8))
        .drain_budget(0);
    let err = MultiAppExperiment::new(NocConfig::paper_4x4(), schedule)
        .run()
        .unwrap_err();
    assert_eq!(err.phase, 1, "the second load hits the live traffic");
    assert_eq!(err.source.current_app, "uniform8@0.2");
    assert_eq!(err.source.next_app, "uniform8@0.25");
    assert_eq!(err.source.max_drain_cycles, 0);
    assert!(err.to_string().contains("did not drain"));
    // Through the matrix the same failure stays per-cell: the rebuilt
    // designs still complete.
    let schedule = AppSchedule::new()
        .then(Workload::uniform(8, 0.2, 11), hot_plan(7))
        .then(Workload::uniform(8, 0.25, 12), hot_plan(8))
        .drain_budget(0);
    let outcome = ScheduleMatrix::new(NocConfig::paper_4x4(), schedule)
        .threads(2)
        .run_instrumented();
    assert_eq!(outcome.reports.len(), 4);
    for (design, result) in ScheduleDesign::ALL.iter().zip(&outcome.reports) {
        match design {
            ScheduleDesign::Reconfigurable => assert!(result.is_err(), "live design must fail"),
            _ => assert!(
                result.is_ok(),
                "{}: rebuilt designs cannot fail",
                design.label()
            ),
        }
    }
}

#[test]
fn conformance_design_axis_maps_onto_schedule_designs() {
    use smart_testkit::DesignUnderTest;
    let mapped: Vec<ScheduleDesign> = DesignUnderTest::ALL
        .iter()
        .map(|d| d.schedule_design())
        .collect();
    assert_eq!(mapped, ScheduleDesign::ALL.to_vec());
}
