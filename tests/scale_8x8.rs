//! Scale sanity: the whole stack (random placement → routing → preset
//! compilation → simulation → power) on an 8×8 mesh, where routes are
//! long enough to exercise HPC_max segmentation.

use smart_noc::arch::compile::compile;
use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::{Design, DesignKind};
use smart_noc::mapping::{place_random, MappedApp};
use smart_noc::power::{breakdown, EnergyModel, GatingPolicy};
use smart_noc::sim::BernoulliTraffic;
use smart_noc::taskgraph::apps;

#[test]
fn suite_runs_on_8x8_with_random_placement() {
    let cfg = NocConfig::scaled(8);
    let model = EnergyModel::calibrated_45nm(&cfg);
    for graph in [apps::h264(), apps::vopd(), apps::wlan()] {
        let placement = place_random(cfg.mesh, &graph, 2026);
        let mapped = MappedApp::with_placement(&cfg, &graph, placement);
        let compiled = compile(cfg.mesh, cfg.hpc_max, &mapped.routes);

        // Long routes must still fit single segments (mesh diameter 14
        // > HPC_max 8, so splits may appear) and every leg obeys the
        // reach.
        for plan in compiled.flows.iter() {
            for leg in &plan.legs {
                assert!(
                    leg.links.len() <= cfg.hpc_max,
                    "{}: leg of {} links exceeds HPC_max",
                    graph.name(),
                    leg.links.len()
                );
            }
        }

        for kind in [DesignKind::Mesh, DesignKind::Smart] {
            let mut design = Design::build(kind, &cfg, &mapped.routes);
            let table = smart_noc::sim::FlowTable::mesh_baseline(cfg.mesh, &mapped.routes);
            let mut traffic =
                BernoulliTraffic::new(&mapped.rates, &table, cfg.mesh, cfg.flits_per_packet(), 64);
            design.run_with(&mut traffic, 15_000);
            assert!(design.drain(10_000), "{}: drains", graph.name());
            let c = design.counters();
            assert_eq!(c.packets_injected, c.packets_delivered);
            let p = breakdown(&model, c, cfg.clock_ghz, GatingPolicy::for_design(kind));
            assert!(p.total_w() > 0.0 && p.total_w() < 1.0);
        }
    }
}

#[test]
fn smart_still_wins_at_8x8_scale() {
    let cfg = NocConfig::scaled(8);
    let graph = apps::vopd();
    let placement = place_random(cfg.mesh, &graph, 7);
    let mapped = MappedApp::with_placement(&cfg, &graph, placement);
    let mut lat = Vec::new();
    for kind in [DesignKind::Mesh, DesignKind::Smart] {
        let mut design = Design::build(kind, &cfg, &mapped.routes);
        let table = smart_noc::sim::FlowTable::mesh_baseline(cfg.mesh, &mapped.routes);
        let mut traffic =
            BernoulliTraffic::new(&mapped.rates, &table, cfg.mesh, cfg.flits_per_packet(), 64);
        design.set_stats_from(2_000);
        design.run_with(&mut traffic, 25_000);
        design.drain(10_000);
        lat.push(design.stats().avg_network_latency());
    }
    // With ~4-hop average routes the paper's remark applies: longer
    // paths magnify SMART's benefit (well above the 4x4's 60%).
    let reduction = 1.0 - lat[1] / lat[0];
    assert!(
        reduction > 0.5,
        "SMART reduction at 8x8 should stay large, got {:.2} (Mesh {:.1} vs SMART {:.1})",
        reduction,
        lat[0],
        lat[1]
    );
}
