//! Scale sanity: the whole stack (random placement → routing → preset
//! compilation → simulation → power) on an 8×8 mesh, where routes are
//! long enough to exercise HPC_max segmentation.

use smart_noc::arch::compile::compile;
use smart_noc::mapping::place_random;
use smart_noc::prelude::*;

#[test]
fn suite_runs_on_8x8_with_random_placement() {
    let cfg = NocConfig::scaled(8);
    for graph in [apps::h264(), apps::vopd(), apps::wlan()] {
        let placement = place_random(cfg.topology, &graph, 2026);
        let mapped = MappedApp::with_placement(&cfg, &graph, placement);
        let compiled = compile(cfg.topology, cfg.hpc_max, &mapped.routes);

        // Long routes must still fit single segments (mesh diameter 14
        // > HPC_max 8, so splits may appear) and every leg obeys the
        // reach.
        for plan in compiled.flows.iter() {
            for leg in &plan.legs {
                assert!(
                    leg.links.len() <= cfg.hpc_max,
                    "{}: leg of {} links exceeds HPC_max",
                    graph.name(),
                    leg.links.len()
                );
            }
        }

        let reports = ExperimentMatrix::new(cfg.clone())
            .designs(&[DesignKind::Mesh, DesignKind::Smart])
            .workloads(vec![Workload::from(&mapped)])
            .plan(RunPlan {
                warmup: 0,
                measure: 8_000,
                drain: 8_000,
                seed: 64,
            })
            .measure_power()
            .run();
        for r in &reports {
            assert!(r.drained, "{}: drains", graph.name());
            assert_eq!(r.counters.packets_injected, r.counters.packets_delivered);
            let p = r.power.expect("power attached");
            assert!(p.total_w() > 0.0 && p.total_w() < 1.0);
        }
    }
}

#[test]
fn smart_still_wins_at_8x8_scale() {
    let cfg = NocConfig::scaled(8);
    let graph = apps::vopd();
    let placement = place_random(cfg.topology, &graph, 7);
    let mapped = MappedApp::with_placement(&cfg, &graph, placement);
    let lat: Vec<f64> = ExperimentMatrix::new(cfg)
        .designs(&[DesignKind::Mesh, DesignKind::Smart])
        .workloads(vec![Workload::from(&mapped)])
        .plan(RunPlan {
            warmup: 2_000,
            measure: 10_000,
            drain: 8_000,
            seed: 64,
        })
        .run()
        .iter()
        .map(|r| r.avg_network_latency)
        .collect();
    // With ~4-hop average routes the paper's remark applies: longer
    // paths magnify SMART's benefit (well above the 4x4's 60%).
    let reduction = 1.0 - lat[1] / lat[0];
    assert!(
        reduction > 0.5,
        "SMART reduction at 8x8 should stay large, got {:.2} (Mesh {:.1} vs SMART {:.1})",
        reduction,
        lat[0],
        lat[1]
    );
}
