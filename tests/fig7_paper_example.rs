//! Integration test: the paper's Fig 7 worked example, end to end
//! through mapping-free preset compilation and the cycle-accurate
//! engine.

use smart_noc::arch::config::NocConfig;
use smart_noc::arch::noc::SmartNoc;
use smart_noc::arch::scenarios::fig7_flows;
use smart_noc::sim::{FlowId, NodeId, ScriptedTraffic, SourceRoute};

fn routes() -> (NocConfig, Vec<(FlowId, SourceRoute, u64)>) {
    let cfg = NocConfig::paper_4x4();
    (cfg.clone(), fig7_flows(cfg.topology))
}

#[test]
fn traversal_times_match_the_figure() {
    let (cfg, flows) = routes();
    let routes: Vec<(FlowId, SourceRoute)> =
        flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
    let mut noc = SmartNoc::new(&cfg, &routes);

    // Staggered single packets: per-flow zero-load latency.
    let events: Vec<(u64, FlowId)> = flows
        .iter()
        .enumerate()
        .map(|(i, (f, _, _))| (50 * i as u64, *f))
        .collect();
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut().run_with(&mut traffic, 400);
    assert!(noc.network().is_quiescent());

    for (flow, _, expected) in &flows {
        let got = noc
            .network()
            .stats()
            .flow(*flow)
            .unwrap_or_else(|| panic!("{flow} not delivered"))
            .avg_head_latency();
        assert_eq!(got, *expected as f64, "{flow}");
    }
}

#[test]
fn red_and_blue_stop_exactly_at_routers_9_and_10() {
    let (cfg, flows) = routes();
    let routes: Vec<(FlowId, SourceRoute)> =
        flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
    let noc = SmartNoc::new(&cfg, &routes);
    let stops = &noc.compiled().stops;
    assert!(stops[&FlowId(0)].is_empty(), "green bypasses everything");
    assert!(stops[&FlowId(1)].is_empty(), "purple bypasses everything");
    assert_eq!(stops[&FlowId(2)], vec![NodeId(9), NodeId(10)], "red");
    assert_eq!(stops[&FlowId(3)], vec![NodeId(9), NodeId(10)], "blue");
}

#[test]
fn credit_path_returns_vcs_for_repeated_packets() {
    // The blue flow's credits travel NIC3 -> (3,7,11 preset credit
    // crossbars) -> router 10 in one cycle; with only 2 VCs per port, a
    // long packet train only flows if those multi-hop credits work.
    let (cfg, flows) = routes();
    let routes: Vec<(FlowId, SourceRoute)> =
        flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
    let mut noc = SmartNoc::new(&cfg, &routes);
    let blue = flows[3].0;
    let events: Vec<(u64, FlowId)> = (0..20).map(|i| (i, blue)).collect();
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut().run_with(&mut traffic, 2_000);
    assert!(noc.network().is_quiescent(), "train must drain");
    let st = noc.network().stats().flow(blue).expect("delivered");
    assert_eq!(st.packets, 20, "all packets through 2 VCs via credit mesh");
}

#[test]
fn simultaneous_arrival_serializes_per_footnote_7() {
    let (cfg, flows) = routes();
    let routes: Vec<(FlowId, SourceRoute)> =
        flows.iter().map(|(f, r, _)| (*f, r.clone())).collect();
    let mut noc = SmartNoc::new(&cfg, &routes);
    let events = vec![(0, flows[2].0), (0, flows[3].0)];
    let mut traffic = ScriptedTraffic::new(
        events,
        cfg.flits_per_packet(),
        noc.network().flows(),
        cfg.topology,
    );
    noc.network_mut().run_with(&mut traffic, 300);
    let red = noc.network().stats().flow(flows[2].0).expect("red");
    let blue = noc.network().stats().flow(flows[3].0).expect("blue");
    let (fast, slow) = if red.avg_head_latency() < blue.avg_head_latency() {
        (red, blue)
    } else {
        (blue, red)
    };
    assert_eq!(fast.avg_head_latency(), 7.0, "winner sees Fig 7 latency");
    // Loser waits for the winner's 8-flit packet to clear the shared
    // output port.
    assert!(
        slow.avg_head_latency() >= 14.0,
        "loser head latency {} must include the serialization wait",
        slow.avg_head_latency()
    );
}
