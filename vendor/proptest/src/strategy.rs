//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` retries before giving up on a case.
const FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred`; `whence` names the requirement in
    /// the panic raised if no acceptable value is found.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter gave up after {FILTER_RETRIES} rejections: {}",
            self.whence
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() - *self.start()) as u64;
                // span + 1 may wrap only for the full u64 domain, which
                // the workspace never requests.
                *self.start() + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
