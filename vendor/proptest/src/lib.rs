//! Offline shim of `proptest`: the `proptest!` macro, `Strategy` with
//! `prop_map` / `prop_filter`, range / tuple / vec / select strategies,
//! `prop_assert*` / `prop_assume!` and `ProptestConfig`.
//!
//! Cases are generated from a deterministic RNG seeded by the test
//! function's name, so every run explores the same inputs — failures
//! reproduce exactly. There is no shrinking: on failure the offending
//! inputs are printed verbatim instead.
//!
//! `PROPTEST_CASES=<n>` in the environment caps the per-test case count
//! (used by CI to bound property-test time).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly pick one of `options` per case.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() from an empty set");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property; panics with the case inputs reported.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skip the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let cases = cfg.effective_cases();
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let guard = $crate::test_runner::CaseGuard::new(
                        stringify!($name),
                        case,
                        vec![$((stringify!($arg), format!("{:?}", $arg))),+],
                    );
                    let mut body = || $body;
                    body();
                    guard.disarm();
                }
            }
        )*
    };
}
