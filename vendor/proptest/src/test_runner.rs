//! Deterministic case generation and run configuration.

/// Per-test configuration (only the case count is modelled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The configured case count, capped by `PROPTEST_CASES` when that
    /// environment variable holds a positive integer (CI sets it to
    /// bound property-test time).
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) if cap > 0 => self.cases.min(cap),
            _ => self.cases,
        }
    }
}

/// Deterministic RNG (SplitMix64) seeded from the test name, so every
/// run of a property explores the identical input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from `name` (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints the failing case's inputs if the property body panics
/// (proptest proper would shrink; we report the raw case instead).
pub struct CaseGuard {
    test: &'static str,
    case: u32,
    inputs: Vec<(&'static str, String)>,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    #[must_use]
    pub fn new(test: &'static str, case: u32, inputs: Vec<(&'static str, String)>) -> Self {
        CaseGuard {
            test,
            case,
            inputs,
            armed: true,
        }
    }

    /// The case passed; silence the guard.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest: {} failed at case #{}:", self.test, self.case);
            for (name, value) in &self.inputs {
                eprintln!("  {name} = {value}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_bounded() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn env_cap_applies() {
        // Avoid mutating the process env (other tests run in parallel);
        // just exercise both arms of the min logic directly.
        let cfg = ProptestConfig::with_cases(128);
        assert_eq!(cfg.cases.min(64), 64);
        assert_eq!(cfg.cases.min(512), 128);
    }
}
