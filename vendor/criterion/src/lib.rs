//! Offline shim of `criterion`: wall-clock benchmarking with the same
//! authoring API (`criterion_group!` / `criterion_main!`, benchmark
//! groups, `Bencher::iter`, `Throughput`). Reports the median per-iter
//! time over `sample_size` samples; no plots, no statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target duration for one timing sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Upper bound on iterations batched into a single sample.
const MAX_ITERS_PER_SAMPLE: u64 = 10_000;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Samples per benchmark (builder style, like criterion proper).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(id, None, sample_size, f);
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped override; `None` inherits the parent `Criterion`'s
    /// setting (and, like criterion proper, the override dies with the
    /// group).
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Samples per benchmark for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmark a routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.throughput, self.effective_sample_size(), f);
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.throughput, self.effective_sample_size(), |b| {
            f(b, input);
        });
    }

    /// End the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark routine; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time, filled by `iter`.
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, batching iterations into `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill SAMPLE_TARGET?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos())
            .clamp(1, MAX_ITERS_PER_SAMPLE as u128) as u64;

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed() / u32::try_from(iters).expect("iters bounded")
            })
            .collect();
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        median: None,
    };
    f(&mut b);
    match b.median {
        Some(t) => {
            let rate = throughput.map(|tp| {
                let per_sec = |n: u64| n as f64 / t.as_secs_f64().max(f64::MIN_POSITIVE);
                match tp {
                    Throughput::Elements(n) => format!("  {:.3e} elem/s", per_sec(n)),
                    Throughput::Bytes(n) => format!("  {:.3e} B/s", per_sec(n)),
                }
            });
            println!("{id:<48} {t:>12.3?}/iter{}", rate.unwrap_or_default());
        }
        None => println!("{id:<48} (no Bencher::iter call)"),
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_median() {
        let mut c = Criterion::default().sample_size(3);
        // Smoke: a trivial routine runs and reports without panicking.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
