//! Offline shim of the `rand` crate: exactly the API surface this
//! workspace consumes (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` / `gen_range` / `gen_bool`), implemented over a
//! SplitMix64 core so streams are deterministic per seed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods over a raw `u64` source.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` (uniform over `T`'s natural domain;
    /// `[0, 1)` for floats).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform sample in `[range.start, range.end)`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self.next_u64(), range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::sample(self.next_u64()) < p
    }
}

/// Types samplable from 64 raw bits.
pub trait Sample {
    /// Map raw bits to a uniform value.
    fn sample(bits: u64) -> Self;
}

impl Sample for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Sample for u32 {
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Map raw bits to a uniform value in `[range.start, range.end)`.
    fn sample_range(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(bits: u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (bits % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample_range(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + f64::sample(bits) * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64). Not the real `rand`
    /// `StdRng` algorithm, but satisfies the same trait surface and the
    /// workspace's determinism requirements.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5u16..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-0.0f64..3.5);
            assert!((0.0..3.5).contains(&y));
        }
    }
}
