//! # smart-noc — facade crate
//!
//! Reproduction of *SMART: A Single-Cycle Reconfigurable NoC for SoC
//! Applications* (DATE 2013). This crate re-exports the whole workspace
//! behind one dependency; see the individual crates for details:
//!
//! * [`link`] — VLR / full-swing link circuit models (Section III).
//! * [`sim`] — cycle-accurate NoC simulation substrate.
//! * [`arch`] — the SMART architecture: bypass, presets, credit mesh,
//!   reconfiguration (Section IV).
//! * [`taskgraph`] — the eight SoC application task graphs (Section VI).
//! * [`mapping`] — NMAP-style mapping, routing and preset compilation.
//! * [`power`] — per-event energy model and the Fig 10b breakdown.
//! * [`rtlgen`] — the Section V tool flow (RTL, macro blocks, floorplan).
//! * [`traffic`] — pluggable traffic generation: spatial patterns
//!   (transpose, tornado, hotspot, …), temporal burst models, and
//!   JSONL trace record/replay.
//! * [`harness`] — the one-experiment API: [`harness::Experiment`]
//!   composes all of the above into configure → map → build → drive →
//!   measure, [`harness::ExperimentMatrix`] fans out over designs ×
//!   workloads on scoped threads, and [`harness::MultiAppExperiment`]
//!   drives multi-application schedules (Fig 1) with per-transition
//!   reconfiguration costs.

pub use smart_core as arch;
pub use smart_harness as harness;
pub use smart_link as link;
pub use smart_mapping as mapping;
pub use smart_power as power;
pub use smart_rtlgen as rtlgen;
pub use smart_sim as sim;
pub use smart_taskgraph as taskgraph;
pub use smart_traffic as traffic;

/// One-stop imports for the common workflow: one
/// [`Experiment`](smart_harness::Experiment) per (design, workload)
/// cell, or an [`ExperimentMatrix`](smart_harness::ExperimentMatrix)
/// for the full fan-out.
///
/// ```
/// use smart_noc::prelude::*;
///
/// let report = Experiment::new(NocConfig::paper_4x4())
///     .design(DesignKind::Smart)
///     .workload(Workload::app("PIP"))
///     .plan(RunPlan::smoke())
///     .run();
/// assert!(report.drained);
/// assert_eq!(report.packets_delivered, report.packets_injected);
/// ```
pub mod prelude {
    pub use smart_core::config::NocConfig;
    pub use smart_core::noc::{Design, DesignKind, MeshNoc, SmartNoc};
    pub use smart_core::reconfig::{ReconfigError, ReconfigReport, ReconfigurableNoc};
    pub use smart_harness::{
        AppPhase, AppSchedule, Drive, Experiment, ExperimentMatrix, ExperimentReport,
        MatrixOutcome, MultiAppExperiment, PhaseTransition, RoutedWorkload, RunPlan,
        ScheduleDesign, ScheduleError, ScheduleMatrix, ScheduleOutcome, ScheduleReport,
        TrafficContext, TrafficFactory, Workload,
    };
    pub use smart_mapping::MappedApp;
    pub use smart_power::{breakdown, EnergyModel, GatingPolicy};
    pub use smart_sim::{
        BernoulliTraffic, FlowId, FlowTable, Mesh, NodeId, Packet, PacketId, ScriptedTraffic,
        SourceRoute, TelemetryConfig, TelemetrySeries,
    };
    pub use smart_taskgraph::apps;
    pub use smart_traffic::{
        ModulatedTraffic, SpatialPattern, TemporalModel, TraceFile, TraceRecorder, TraceTraffic,
    };
}
